//! # pano-telemetry — observability substrate for the streaming stack
//!
//! Production-scale streaming needs to see *where* time and bytes go —
//! inside the JND predictor, the quality-allocation lookup table, the MPC
//! solver and the fault/retry delivery path — without perturbing the
//! simulation results it observes. This crate provides:
//!
//! * a **metrics registry** ([`metrics`]) — counters, gauges and
//!   log-scaled histograms (p50/p90/p99/max) behind cheap atomic
//!   handles, mergeable across threads in any order;
//! * **span timing** ([`span`]) — RAII guards with nestable scopes and
//!   per-scope wall-time/call-count aggregation;
//! * pluggable **sinks** ([`sink`]) — no-op (default), in-memory (tests)
//!   and JSONL (the replayable run artifact);
//! * a **run report** ([`report`]) — folds one run's telemetry into a
//!   human-readable table (stage timings, fetch outcome breakdown,
//!   retry/abandonment funnel, bytes by tile class);
//! * **crash-safe artefact writes** ([`artifact`]) — the tmp + fsync +
//!   rename helper ([`atomic_write`]) every binary uses for `results/`
//!   files, enforced workspace-wide by the `pano-lint` P2 rule.
//!
//! The entry point is the [`Telemetry`] handle: a cheaply cloneable
//! capability that the instrumented crates (`pano-net`, `pano-abr`,
//! `pano-jnd`, `pano-sim`, `pano-bench`) accept and thread through. The
//! disabled handle ([`Telemetry::disabled`], also the `Default`) reduces
//! every operation to a branch on an `Option` — no clock reads, no
//! allocation, no atomics — which is what keeps the hot paths within
//! their overhead budget (see DESIGN.md §9).
//!
//! The crate is dependency-free (std only) so it can sit below every
//! other crate in the workspace, including in minimal builds; it carries
//! its own tiny JSON layer ([`json`]) for the event stream.
//!
//! It is also the workspace's **only** sanctioned home for wall-clock
//! reads ([`Stopwatch`], span timing): the `pano-lint` D2 rule bans
//! `Instant::now()`/`SystemTime` everywhere else outside bench binaries.
//!
//! ```
//! use pano_telemetry::{Json, RunId, Telemetry};
//!
//! let (tel, sink) = Telemetry::in_memory(RunId::from_parts("demo", 7), 7);
//! {
//!     let _session = tel.span("session");
//!     tel.counter("net.fetch.requests").inc();
//!     let _fetch = tel.span("fetch");
//! }
//! tel.emit("chunk", Some(0.0), Json::obj([("pspnr_db", Json::from(62.0))]));
//! assert_eq!(sink.events().len(), 1);
//! let report = tel.report("demo");
//! assert!(report.render().contains("session/fetch"));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod artifact;
pub mod json;
pub mod metrics;
pub mod report;
pub mod runid;
pub mod sink;
pub mod span;
pub mod trace;

pub use artifact::{atomic_write, atomic_write_str};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use report::RunReport;
pub use runid::RunId;
pub use sink::{read_jsonl, Event, JsonlSink, MemorySink, NoopSink, RingSink, Sink, TeeSink};
pub use span::{SpanGuard, Stopwatch};

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

struct Inner {
    registry: Registry,
    sink: Arc<dyn Sink>,
    run_id: RunId,
    seed: u64,
    /// When set, every span additionally emits `span_begin`/`span_end`
    /// events into the sink stream (the `--trace` timeline export).
    trace_spans: bool,
    /// One monotonic origin per run, shared by every child handle, so
    /// all span-event timestamps live on a single timeline.
    origin: Instant,
}

/// The telemetry capability handle.
///
/// Cloning is an `Arc` bump; the disabled handle is a `None` and costs a
/// branch per operation. All methods are safe to call from any thread.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Telemetry(disabled)"),
            Some(i) => write!(f, "Telemetry(run {}, seed {})", i.run_id, i.seed),
        }
    }
}

impl Telemetry {
    /// The inert handle: every operation is a no-op. This is the default
    /// for all instrumented configs, preserving the repo's
    /// reproducibility contract at zero cost.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// An enabled handle over an explicit sink.
    pub fn with_sink(run_id: RunId, seed: u64, sink: Arc<dyn Sink>) -> Telemetry {
        Telemetry::with_sink_traced(run_id, seed, sink, false)
    }

    /// [`Telemetry::with_sink`] with span events opted in (or not): when
    /// `trace_spans` is set, every [`Telemetry::span`] emits a
    /// `span_begin`/`span_end` event pair into the sink, the raw
    /// material of the [`trace`] timeline export. Aggregated results are
    /// identical either way.
    pub fn with_sink_traced(
        run_id: RunId,
        seed: u64,
        sink: Arc<dyn Sink>,
        trace_spans: bool,
    ) -> Telemetry {
        Telemetry(Some(Arc::new(Inner {
            registry: Registry::new(),
            sink,
            run_id,
            seed,
            trace_spans,
            origin: Instant::now(),
        })))
    }

    /// An enabled handle that aggregates metrics but drops events.
    pub fn recording(run_id: RunId, seed: u64) -> Telemetry {
        Telemetry::with_sink(run_id, seed, Arc::new(NoopSink))
    }

    /// An enabled handle buffering events in memory (tests, reports).
    pub fn in_memory(run_id: RunId, seed: u64) -> (Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (
            Telemetry::with_sink(run_id, seed, sink.clone() as Arc<dyn Sink>),
            sink,
        )
    }

    /// An enabled handle streaming events to a JSONL file.
    pub fn jsonl(run_id: RunId, seed: u64, path: impl AsRef<Path>) -> std::io::Result<Telemetry> {
        let sink = Arc::new(JsonlSink::create(path)?);
        Ok(Telemetry::with_sink(run_id, seed, sink))
    }

    /// [`Telemetry::jsonl`] with span events opted in or out — the
    /// `repro --trace` entry point.
    pub fn jsonl_traced(
        run_id: RunId,
        seed: u64,
        path: impl AsRef<Path>,
        trace_spans: bool,
    ) -> std::io::Result<Telemetry> {
        let sink = Arc::new(JsonlSink::create(path)?);
        Ok(Telemetry::with_sink_traced(run_id, seed, sink, trace_spans))
    }

    /// Whether spans on this handle emit begin/end events.
    pub fn span_events_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|i| i.trace_spans)
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The run stamp ([`RunId::NONE`] when disabled).
    pub fn run_id(&self) -> RunId {
        self.0.as_ref().map_or(RunId::NONE, |i| i.run_id)
    }

    /// The run seed (0 when disabled).
    pub fn seed(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.seed)
    }

    /// A counter handle (no-op when disabled). Cache the handle outside
    /// hot loops: registration takes a lock, updates do not.
    pub fn counter(&self, name: &str) -> Counter {
        self.0
            .as_ref()
            .map_or_else(Counter::noop, |i| i.registry.counter(name))
    }

    /// A gauge handle (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0
            .as_ref()
            .map_or_else(Gauge::noop, |i| i.registry.gauge(name))
    }

    /// A histogram handle (no-op when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.0
            .as_ref()
            .map_or_else(Histogram::noop, |i| i.registry.histogram(name))
    }

    /// Opens a timing span; the returned RAII guard records wall time
    /// into `span.<nested/path>` on drop. Inert (not even a clock read)
    /// when disabled. When span events are enabled
    /// ([`Telemetry::with_sink_traced`]) the guard additionally emits a
    /// `span_begin` now and a `span_end` on drop.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.0 {
            None => SpanGuard::noop(),
            Some(i) => span::enter(
                &i.registry,
                name,
                i.trace_spans.then(|| span::SpanTrace {
                    sink: i.sink.clone(),
                    run_id: i.run_id,
                    seed: i.seed,
                    origin: i.origin,
                }),
            ),
        }
    }

    /// Emits one structured event to the sink, stamped with the run id
    /// and seed. `t_secs` is the simulation clock when the emitter has
    /// one.
    pub fn emit(&self, kind: &str, t_secs: Option<f64>, fields: Json) {
        if let Some(i) = &self.0 {
            i.sink.emit(&Event {
                run_id: i.run_id,
                seed: i.seed,
                t_secs,
                kind: kind.to_string(),
                fields,
            });
        }
    }

    /// Copies the registry out as a serialisable snapshot (empty when
    /// disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.0
            .as_ref()
            .map_or_else(Snapshot::default, |i| i.registry.snapshot())
    }

    /// Folds a snapshot (e.g. a child's or another thread's) into this
    /// registry.
    pub fn merge(&self, snap: &Snapshot) {
        if let Some(i) = &self.0 {
            i.registry.merge(snap);
        }
    }

    /// A child handle: fresh registry, same sink/seed, derived run id.
    /// Lets concurrent sub-runs (sweep cells, per-user sessions)
    /// aggregate independently and merge back in any order while
    /// streaming events to the same artifact.
    pub fn child(&self, label: &str, index: u64) -> Telemetry {
        match &self.0 {
            None => Telemetry::disabled(),
            Some(i) => Telemetry(Some(Arc::new(Inner {
                registry: Registry::new(),
                sink: i.sink.clone(),
                run_id: i.run_id.child(label, index),
                seed: i.seed,
                trace_spans: i.trace_spans,
                origin: i.origin,
            }))),
        }
    }

    /// A child handle with a flight recorder attached: like
    /// [`Telemetry::child`], but the child's sink is a [`TeeSink`] over
    /// the parent's sink and a fresh [`RingSink`] of capacity `cap`, so
    /// the last `cap` events of this child are retrievable after the
    /// fact (the sweep supervisor serialises them into quarantine
    /// records). Returns `None` for the ring when the handle is disabled
    /// or `cap` is 0 — in both cases this degrades to a plain child with
    /// no recording overhead.
    pub fn child_recorded(
        &self,
        label: &str,
        index: u64,
        cap: usize,
    ) -> (Telemetry, Option<Arc<RingSink>>) {
        match &self.0 {
            None => (Telemetry::disabled(), None),
            Some(_) if cap == 0 => (self.child(label, index), None),
            Some(i) => {
                let ring = Arc::new(RingSink::new(cap));
                let tee: Arc<dyn Sink> =
                    Arc::new(TeeSink::new(i.sink.clone(), ring.clone() as Arc<dyn Sink>));
                let child = Telemetry(Some(Arc::new(Inner {
                    registry: Registry::new(),
                    sink: tee,
                    run_id: i.run_id.child(label, index),
                    seed: i.seed,
                    trace_spans: i.trace_spans,
                    origin: i.origin,
                })));
                (child, Some(ring))
            }
        }
    }

    /// Builds a run report over the current snapshot.
    pub fn report(&self, title: impl Into<String>) -> RunReport {
        RunReport::new(title, self.run_id(), self.seed(), self.snapshot())
    }

    /// Flushes the sink (JSONL buffers).
    pub fn flush(&self) {
        if let Some(i) = &self.0 {
            i.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_fully_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.run_id(), RunId::NONE);
        tel.counter("c").inc();
        tel.gauge("g").set(1.0);
        tel.histogram("h").record(1.0);
        let _span = tel.span("s");
        tel.emit("e", None, Json::Null);
        assert!(tel.snapshot().is_empty());
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn enabled_handle_aggregates_and_emits() {
        let (tel, sink) = Telemetry::in_memory(RunId::from_parts("t", 3), 3);
        assert!(tel.is_enabled());
        tel.counter("net.fetch.requests").add(2);
        {
            let _outer = tel.span("outer");
            let _inner = tel.span("inner");
        }
        tel.emit("chunk", Some(4.0), Json::obj([("k", Json::from(1u64))]));
        let snap = tel.snapshot();
        assert_eq!(snap.counters["net.fetch.requests"], 2);
        assert_eq!(snap.histograms["span.outer/inner"].count, 1);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].run_id, tel.run_id());
        assert_eq!(events[0].seed, 3);
        assert_eq!(events[0].t_secs, Some(4.0));
    }

    #[test]
    fn clones_share_the_registry() {
        let tel = Telemetry::recording(RunId::from_parts("t", 1), 1);
        let clone = tel.clone();
        clone.counter("x").inc();
        tel.counter("x").inc();
        assert_eq!(tel.snapshot().counters["x"], 2);
    }

    #[test]
    fn children_merge_back_in_any_order() {
        let parent = Telemetry::recording(RunId::from_parts("parent", 9), 9);
        let a = parent.child("cell", 0);
        let b = parent.child("cell", 1);
        assert_ne!(a.run_id(), b.run_id());
        assert_ne!(a.run_id(), parent.run_id());
        a.counter("n").add(1);
        b.counter("n").add(2);
        // Children are isolated until merged.
        assert!(parent.snapshot().counters.is_empty());
        parent.merge(&b.snapshot());
        parent.merge(&a.snapshot());
        assert_eq!(parent.snapshot().counters["n"], 3);
    }

    #[test]
    fn traced_handle_emits_span_events_and_children_inherit() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink_traced(
            RunId::from_parts("traced", 2),
            2,
            sink.clone() as Arc<dyn Sink>,
            true,
        );
        assert!(tel.span_events_enabled());
        {
            let _s = tel.span("outer");
        }
        let child = tel.child("cell", 0);
        assert!(child.span_events_enabled());
        {
            let _s = child.span("inner");
        }
        let kinds: Vec<String> = sink.events().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec!["span_begin", "span_end", "span_begin", "span_end"]
        );
        // Child span events carry the derived run id.
        assert_eq!(sink.events()[2].run_id, child.run_id());

        // The untraced handle emits nothing for spans.
        let (plain, plain_sink) = Telemetry::in_memory(RunId::from_parts("plain", 2), 2);
        assert!(!plain.span_events_enabled());
        {
            let _s = plain.span("quiet");
        }
        assert!(plain_sink.is_empty());
    }

    #[test]
    fn recorded_child_tees_into_its_ring_without_perturbing_the_stream() {
        let (tel, sink) = Telemetry::in_memory(RunId::from_parts("rec", 3), 3);
        let (child, ring) = tel.child_recorded("cell", 7, 2);
        let ring = ring.expect("enabled parent with cap > 0 gets a ring");
        for i in 0..4u64 {
            child.emit("work", None, Json::from(i));
        }
        // The main stream saw everything; the ring kept the tail.
        assert_eq!(sink.len(), 4);
        let tail = ring.tail();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].fields.as_f64(), Some(3.0));
        assert_eq!(tail[0].run_id, child.run_id());

        // cap == 0 and disabled parents degrade to plain children.
        let (plain, no_ring) = tel.child_recorded("cell", 8, 0);
        assert!(no_ring.is_none());
        assert!(plain.is_enabled());
        let (off, no_ring) = Telemetry::disabled().child_recorded("cell", 0, 4);
        assert!(no_ring.is_none());
        assert!(!off.is_enabled());
    }

    #[test]
    fn jsonl_handle_streams_replayable_records() {
        let path = std::env::temp_dir().join(format!(
            "pano-telemetry-lib-test-{}.jsonl",
            std::process::id()
        ));
        let tel = Telemetry::jsonl(RunId::from_parts("jsonl", 11), 11, &path).expect("create");
        tel.emit(
            "session_start",
            Some(0.0),
            Json::obj([("method", Json::from("Pano"))]),
        );
        tel.emit(
            "chunk",
            Some(1.0),
            Json::obj([("pspnr_db", Json::from(60.0))]),
        );
        tel.flush();
        let events = read_jsonl(&path).expect("read");
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.run_id == tel.run_id() && e.seed == 11));
        std::fs::remove_file(&path).ok();
    }
}
