//! Run identity: a deterministic stamp carried by every telemetry record.
//!
//! A [`RunId`] is derived by hashing a label and a seed — never from the
//! wall clock — so re-running the same experiment with the same seed
//! produces the same id, and a JSONL artifact alone identifies the exact
//! configuration that produced it.

/// SplitMix64 finaliser (the same avalanche mix the fault plan uses).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit run stamp, rendered as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RunId(pub u64);

impl RunId {
    /// The null id carried by disabled telemetry.
    pub const NONE: RunId = RunId(0);

    /// Derives an id from a human label (experiment name, cell label) and
    /// a seed. Deterministic: same inputs, same id.
    pub fn from_parts(label: &str, seed: u64) -> RunId {
        let mut h = splitmix64(seed ^ 0x9E3779B97F4A7C15);
        for b in label.as_bytes() {
            h = splitmix64(h ^ *b as u64);
        }
        RunId(h)
    }

    /// Derives a child id (per-cell, per-session) from this one.
    pub fn child(&self, label: &str, index: u64) -> RunId {
        let mut h = splitmix64(self.0 ^ index);
        for b in label.as_bytes() {
            h = splitmix64(h ^ *b as u64);
        }
        RunId(h)
    }

    /// Parses the 16-hex-digit rendering back into an id.
    pub fn parse(text: &str) -> Option<RunId> {
        u64::from_str_radix(text, 16).ok().map(RunId)
    }
}

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_label_sensitive() {
        let a = RunId::from_parts("robust", 42);
        assert_eq!(a, RunId::from_parts("robust", 42));
        assert_ne!(a, RunId::from_parts("robust", 43));
        assert_ne!(a, RunId::from_parts("fig15", 42));
        assert_ne!(a, RunId::NONE);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn children_are_distinct_per_label_and_index() {
        let root = RunId::from_parts("robust", 1);
        assert_ne!(root.child("cell", 0), root.child("cell", 1));
        assert_ne!(root.child("cell", 0), root.child("user", 0));
        assert_eq!(root.child("cell", 3), root.child("cell", 3));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let id = RunId::from_parts("roundtrip", 5);
        assert_eq!(RunId::parse(&id.to_string()), Some(id));
        assert_eq!(RunId::parse("0000000000000007"), Some(RunId(7)));
        assert_eq!(RunId::parse("not-hex"), None);
    }
}
