//! Event sinks: where structured telemetry records go.
//!
//! The registry handles aggregate; events carry the *stream* — one
//! JSON-able record per interesting occurrence (session start, chunk
//! played, fetch fault, experiment finished). Three sinks cover the
//! deployment spectrum:
//!
//! * [`NoopSink`] — the default: events vanish, aggregation still works.
//! * [`MemorySink`] — buffers events for tests and in-process reports.
//! * [`JsonlSink`] — streams one JSON object per line to a file, the
//!   replayable run artifact under `results/telemetry/`.
//!
//! Two combinators support the flight recorder (DESIGN.md §14):
//!
//! * [`RingSink`] — a bounded ring holding the last N events (fixed
//!   allocation, oldest evicted first); the per-cell flight recorder.
//! * [`TeeSink`] — forwards every event to two sinks, letting a cell's
//!   events both stream to the run artifact and land in its ring.

use crate::json::Json;
use crate::runid::RunId;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Run stamp — every record of one run carries the same id, so a
    /// JSONL artifact is self-describing.
    pub run_id: RunId,
    /// The seed the run was launched with (replay key).
    pub seed: u64,
    /// Simulation-clock timestamp, when the emitter has one.
    pub t_secs: Option<f64>,
    /// Record kind, e.g. `session_start`, `chunk`, `fetch_fault`.
    pub kind: String,
    /// Kind-specific payload.
    pub fields: Json,
}

impl Event {
    /// Serialises to one compact JSON object (a JSONL line).
    pub fn to_json_line(&self) -> String {
        let mut pairs = vec![
            ("run_id", Json::from(self.run_id.to_string())),
            ("seed", Json::from(self.seed)),
            ("kind", Json::from(self.kind.as_str())),
            ("fields", self.fields.clone()),
        ];
        if let Some(t) = self.t_secs {
            pairs.push(("t_secs", Json::from(t)));
        }
        Json::obj(pairs).to_string()
    }

    /// Parses one JSONL line back into an event.
    pub fn from_json_line(line: &str) -> Option<Event> {
        let v = Json::parse(line)?;
        Some(Event {
            run_id: RunId::parse(v.get("run_id")?.as_str()?)?,
            seed: v.get("seed")?.as_f64()? as u64,
            t_secs: v.get("t_secs").and_then(Json::as_f64),
            kind: v.get("kind")?.as_str()?.to_string(),
            fields: v.get("fields").cloned().unwrap_or(Json::Null),
        })
    }
}

/// Where events go. Implementations must be cheap to call concurrently.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers events in memory; for tests and in-process inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Streams events as JSON lines to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(&path)?)),
            path,
        })
    }

    /// The file this sink streams to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json_line();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Telemetry must never take the run down: I/O errors are dropped.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush();
    }
}

/// A bounded ring buffer over the last N events — the flight recorder.
///
/// Capacity is fixed at construction (one allocation, never grown);
/// emitting into a full ring evicts the oldest event. [`RingSink::tail`]
/// copies the survivors out in arrival order — the "what happened just
/// before the crash" record serialised into
/// [`CellFailure`](../pano_sim/experiments/struct.CellFailure.html)s by
/// the sweep supervisor. A capacity of 0 keeps nothing (every emit is a
/// cheap early return), which is how the recorder is disabled.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap,
            buf: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained events, oldest first.
    pub fn tail(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Drops everything retained so far.
    pub fn clear(&self) {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Sink for RingSink {
    fn emit(&self, event: &Event) {
        if self.cap == 0 {
            return;
        }
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Forwards every event (and flush) to both sinks.
pub struct TeeSink {
    a: Arc<dyn Sink>,
    b: Arc<dyn Sink>,
}

impl TeeSink {
    /// A tee over `a` and `b`; both see every event, `a` first.
    pub fn new(a: Arc<dyn Sink>, b: Arc<dyn Sink>) -> Self {
        TeeSink { a, b }
    }
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink").finish_non_exhaustive()
    }
}

impl Sink for TeeSink {
    fn emit(&self, event: &Event) {
        self.a.emit(event);
        self.b.emit(event);
    }

    fn flush(&self) {
        self.a.flush();
        self.b.flush();
    }
}

/// Parses a JSONL artifact back into events (replay/analysis path).
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<Event>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(Event::from_json_line)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: &str) -> Event {
        Event {
            run_id: RunId::from_parts("test", 7),
            seed: 7,
            t_secs: Some(1.5),
            kind: kind.to_string(),
            fields: Json::obj([("x", Json::from(1u64))]),
        }
    }

    #[test]
    fn event_json_line_roundtrips() {
        let e = event("chunk");
        assert_eq!(Event::from_json_line(&e.to_json_line()), Some(e));
        // Without a timestamp the key is omitted entirely.
        let mut e2 = event("fault");
        e2.t_secs = None;
        let line = e2.to_json_line();
        assert!(!line.contains("t_secs"));
        assert_eq!(Event::from_json_line(&line), Some(e2));
        assert_eq!(Event::from_json_line("not json"), None);
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let s = MemorySink::new();
        assert!(s.is_empty());
        s.emit(&event("a"));
        s.emit(&event("b"));
        let got = s.events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind, "a");
        assert_eq!(got[1].kind, "b");
    }

    #[test]
    fn ring_sink_keeps_the_last_n_in_order() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.emit(&event(&format!("e{i}")));
        }
        let tail = ring.tail();
        assert_eq!(tail.len(), 3);
        let kinds: Vec<&str> = tail.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["e2", "e3", "e4"]);
        ring.clear();
        assert!(ring.tail().is_empty());

        // Zero capacity retains nothing.
        let off = RingSink::new(0);
        off.emit(&event("dropped"));
        assert!(off.tail().is_empty());
    }

    #[test]
    fn tee_sink_feeds_both_branches() {
        let mem = Arc::new(MemorySink::new());
        let ring = Arc::new(RingSink::new(2));
        let tee = TeeSink::new(mem.clone(), ring.clone());
        for i in 0..3 {
            tee.emit(&event(&format!("t{i}")));
        }
        tee.flush();
        assert_eq!(mem.len(), 3, "the primary sink sees everything");
        let kinds: Vec<String> = ring.tail().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(kinds, vec!["t1", "t2"], "the ring keeps only the tail");
    }

    #[test]
    fn jsonl_sink_roundtrips_through_the_file() {
        let path =
            std::env::temp_dir().join(format!("pano-telemetry-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create sink");
        sink.emit(&event("session_start"));
        sink.emit(&event("chunk"));
        sink.flush();
        let events = read_jsonl(&path).expect("read back");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "session_start");
        assert_eq!(events[1].seed, 7);
        assert_eq!(events[1].t_secs, Some(1.5));
        std::fs::remove_file(&path).ok();
    }
}
