//! Crash-safe artefact writes.
//!
//! Every results file this workspace produces (experiment JSON, rendered
//! tables, run reports, benchmark artifacts) is consumed by diff-based
//! tooling: CI compares byte ranges, the resume machinery compares whole
//! files. A torn write — a process killed between `open(O_TRUNC)` and the
//! final `write` — would leave a half-file that *looks* like a result.
//! [`atomic_write`] closes that window with the classic tmp + fsync +
//! rename dance: readers observe either the complete old bytes or the
//! complete new bytes, never a prefix.
//!
//! The `pano-lint` P2 rule (`raw-artefact-write`) denies plain
//! `fs::write`/`File::create` in artefact-producing code outside this
//! crate, so every results write is auditable at this single choke point.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data lands in a sibling
/// temporary file first, is fsynced, and is then renamed over `path`.
/// Parent directories are created as needed. On any error the target
/// file is left untouched (a stale temporary may remain; it is
/// re-created, not appended, on retry).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    let tmp = tmp_path(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // Flush the data to the device before the rename publishes it:
        // rename-before-fsync can expose an empty file after a crash.
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the error we report is the write failure.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Convenience wrapper for text artefacts.
pub fn atomic_write_str(path: impl AsRef<Path>, text: &str) -> io::Result<()> {
    atomic_write(path, text.as_bytes())
}

/// The sibling temporary for `path`: same directory (rename must not
/// cross filesystems), name suffixed with the writer's pid so concurrent
/// processes never clobber each other's staging file.
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("artifact"));
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pano_atomic_write_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = tmp_dir("basic");
        let path = dir.join("nested/result.json");
        atomic_write(&path, b"{\"v\":1}").expect("first write");
        assert_eq!(fs::read(&path).expect("read"), b"{\"v\":1}");
        atomic_write(&path, b"{\"v\":2}").expect("overwrite");
        assert_eq!(fs::read(&path).expect("read"), b"{\"v\":2}");
        // No staging file left behind.
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn string_variant_matches_bytes() {
        let dir = tmp_dir("str");
        let path = dir.join("report.txt");
        atomic_write_str(&path, "hello\n").expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "hello\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_leaves_existing_file_intact() {
        let dir = tmp_dir("fail");
        let path = dir.join("keep.json");
        atomic_write(&path, b"old").expect("seed");
        // Writing *through* an existing file as if it were a directory
        // must fail without touching the original.
        let bad = path.join("child.json");
        assert!(atomic_write(&bad, b"new").is_err());
        assert_eq!(fs::read(&path).expect("read"), b"old");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_path_is_a_sibling() {
        let t = tmp_path(Path::new("results/robust.json"));
        assert_eq!(t.parent(), Some(Path::new("results")));
        let name = t.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("robust.json.tmp."), "{name}");
    }
}
