//! Deterministic delivery-fault injection and recovery.
//!
//! The plain [`Connection`](crate::Connection) is an infallible transport:
//! the only failure mode the simulator sees is a bandwidth dip in the
//! trace. Production tile streaming is not so kind — requests get lost,
//! transfers reset mid-flight, connections wedge. This module adds that
//! failure surface while preserving the repo's reproducibility contract:
//!
//! * [`FaultPlan`] — a *seeded, stateless* fault source. Every decision is
//!   a pure hash of `(seed, request index, attempt index)`, so a given
//!   `(trace, fault seed, retry policy)` triple always replays the exact
//!   same session, independent of wall-clock and call sites. Raising a
//!   fault rate only ever *adds* faults (the hash draw is compared against
//!   the rate), which keeps loss-rate sweeps monotone.
//! * [`RetryPolicy`] — bounded attempts, exponential backoff with
//!   deterministic jitter (hashed, not sampled), and a per-request
//!   watchdog timeout derived from the predicted clean transfer time.
//! * [`FaultyConnection`] — composes both around the same trace-driven
//!   transfer math as `Connection`. With [`FaultPlan::none`] it is
//!   byte-identical to the plain connection — the backward-compatibility
//!   guarantee the calibrated experiments rely on.
//!
//! Each fetch returns a [`FetchOutcome`]: timing plus attempts, wasted
//! bytes (partial transfers thrown away by resets), time lost to retries,
//! and whether the fetch was abandoned against its deadline.

use crate::connection::FetchResult;
use pano_telemetry::{Counter, Histogram, Json, Telemetry};
use pano_trace::BandwidthTrace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Domain-separation salts for the per-decision hash draws.
const LOSS_SALT: u64 = 0x10;
const RESET_SALT: u64 = 0x20;
const STALL_SALT: u64 = 0x30;
const PROGRESS_SALT: u64 = 0x40;
const JITTER_SALT: u64 = 0x50;
const GE_STATE_SALT: u64 = 0x60;

/// SplitMix64 finaliser — the standard 64-bit avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from `(seed, request, attempt, salt)` —
/// pure, order-independent, replayable.
fn unit_hash(seed: u64, request: u64, attempt: u32, salt: u64) -> f64 {
    let mut h = splitmix64(seed ^ salt);
    h = splitmix64(h ^ request);
    h = splitmix64(h ^ attempt as u64);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// What the fault plan does to one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The attempt completes cleanly.
    None,
    /// The request is lost outright — no bytes flow; the client notices
    /// when its watchdog timeout fires.
    RequestLost,
    /// The connection resets mid-transfer after `progress` of the payload
    /// has arrived; the partial bytes are wasted and reconnecting costs a
    /// penalty.
    Reset {
        /// Fraction of the payload delivered before the reset, in `[0, 1)`.
        progress: f64,
    },
    /// The transfer wedges — bytes stop flowing and the watchdog fires.
    Stuck,
}

/// Two-state Markov (Gilbert–Elliott) loss parameters: the channel
/// alternates between a Good state with rare loss and a Bad state with
/// heavy loss, producing the *correlated* loss bursts real last-mile
/// links exhibit — independently of the per-attempt uniform knobs.
///
/// The chain is seeded and stateless like every other fault decision:
/// the state at request `r` is a pure function of `(seed, r)`, folded
/// from one hash draw per preceding request, so replays are exact and
/// order-independent across connections sharing a plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(Good → Bad) per request.
    pub p_good_to_bad: f64,
    /// P(Bad → Good) per request.
    pub p_bad_to_good: f64,
    /// P(request lost) per attempt while in the Good state.
    pub loss_good: f64,
    /// P(request lost) per attempt while in the Bad state.
    pub loss_bad: f64,
}

/// A seeded, deterministic plan of delivery faults.
///
/// All rates are per-attempt probabilities in `[0, 1]`. The plan is
/// stateless: the decision for `(request, attempt)` is a pure hash, so two
/// connections with the same plan replay identical fault sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Hash seed; different seeds give independent fault sequences.
    pub seed: u64,
    /// P(request lost outright) per attempt.
    pub request_loss: f64,
    /// P(mid-transfer connection reset) per attempt.
    pub reset_rate: f64,
    /// P(transfer wedges until the watchdog fires) per attempt.
    pub stall_rate: f64,
    /// Time to re-establish the connection after a reset, seconds.
    pub reconnect_penalty_secs: f64,
    /// Burst windows `[start, end)` in connection time during which every
    /// attempt is reset — a mid-session reset storm.
    pub reset_bursts: Vec<(f64, f64)>,
    /// Correlated burst loss: when set, the Gilbert–Elliott chain's
    /// state-dependent loss rate *replaces* [`FaultPlan::request_loss`]
    /// in [`FaultPlan::decide`] (reset/stall knobs still apply). Default
    /// `None` keeps old serialised plans loadable unchanged.
    #[serde(default)]
    pub burst_loss: Option<GilbertElliott>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: [`FaultyConnection`] degenerates to the plain
    /// [`Connection`](crate::Connection), byte for byte.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            request_loss: 0.0,
            reset_rate: 0.0,
            stall_rate: 0.0,
            reconnect_penalty_secs: 0.0,
            reset_bursts: Vec::new(),
            burst_loss: None,
        }
    }

    /// A one-knob lossy plan: requests are lost at `loss_rate`, reset at
    /// half of it and wedge at a quarter of it — the mix a flaky last-mile
    /// link produces. Panics unless `loss_rate` is in `[0, 1]`.
    pub fn uniform(loss_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate must be in [0, 1]"
        );
        FaultPlan {
            seed,
            request_loss: loss_rate,
            reset_rate: loss_rate * 0.5,
            stall_rate: loss_rate * 0.25,
            reconnect_penalty_secs: 0.2,
            reset_bursts: Vec::new(),
            burst_loss: None,
        }
    }

    /// A correlated burst-loss plan: request loss follows a seeded
    /// two-state Markov (Gilbert–Elliott) chain instead of a uniform
    /// per-attempt rate — `loss_good` applies in the Good state,
    /// `loss_bad` in the Bad state, and the chain moves Good→Bad /
    /// Bad→Good with the given per-request probabilities. Reset/stall
    /// rates start at zero; compose with a struct update to add them.
    /// Panics unless every probability is in `[0, 1]`.
    pub fn gilbert_elliott(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
        seed: u64,
    ) -> Self {
        for (name, p) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability in [0, 1]"
            );
        }
        FaultPlan {
            seed,
            reconnect_penalty_secs: 0.2,
            burst_loss: Some(GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            }),
            ..FaultPlan::none()
        }
    }

    /// Adds a reset-burst window `[start, start + duration)`.
    pub fn with_reset_burst(mut self, start_secs: f64, duration_secs: f64) -> Self {
        assert!(
            start_secs >= 0.0 && duration_secs >= 0.0,
            "burst window must be non-negative"
        );
        self.reset_bursts
            .push((start_secs, start_secs + duration_secs));
        self
    }

    /// Whether the plan can produce any fault at all.
    pub fn is_active(&self) -> bool {
        self.request_loss > 0.0
            || self.reset_rate > 0.0
            || self.stall_rate > 0.0
            || !self.reset_bursts.is_empty()
            || self
                .burst_loss
                .is_some_and(|ge| ge.loss_good > 0.0 || ge.loss_bad > 0.0)
    }

    /// The Gilbert–Elliott chain state when request `request` is issued:
    /// `true` = Bad. Folded from one hash draw per request since the
    /// chain's start (Good before request 0) — O(request) work, pure in
    /// `(seed, request)`, so every connection sharing the plan sees the
    /// same burst timeline.
    fn burst_state_is_bad(&self, ge: &GilbertElliott, request: u64) -> bool {
        let mut bad = false;
        for r in 0..=request {
            let u = unit_hash(self.seed, r, 0, GE_STATE_SALT);
            bad = if bad {
                u >= ge.p_bad_to_good
            } else {
                u < ge.p_good_to_bad
            };
        }
        bad
    }

    /// The fault (if any) striking attempt `attempt` of request `request`
    /// issued at connection time `at_secs`. Deterministic in its inputs.
    pub fn decide(&self, request: u64, attempt: u32, at_secs: f64) -> Fault {
        if self
            .reset_bursts
            .iter()
            .any(|&(s, e)| at_secs >= s && at_secs < e)
        {
            return Fault::Reset {
                progress: unit_hash(self.seed, request, attempt, PROGRESS_SALT),
            };
        }
        let loss_rate = match &self.burst_loss {
            Some(ge) if self.burst_state_is_bad(ge, request) => ge.loss_bad,
            Some(ge) => ge.loss_good,
            None => self.request_loss,
        };
        if unit_hash(self.seed, request, attempt, LOSS_SALT) < loss_rate {
            return Fault::RequestLost;
        }
        if unit_hash(self.seed, request, attempt, RESET_SALT) < self.reset_rate {
            return Fault::Reset {
                progress: unit_hash(self.seed, request, attempt, PROGRESS_SALT),
            };
        }
        if unit_hash(self.seed, request, attempt, STALL_SALT) < self.stall_rate {
            return Fault::Stuck;
        }
        Fault::None
    }
}

/// Retry/backoff/timeout policy for one object fetch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum transfer attempts per request (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay, seconds.
    pub base_backoff_secs: f64,
    /// Backoff growth factor per failed attempt (≥ 1).
    pub backoff_multiplier: f64,
    /// Backoff ceiling, seconds.
    pub max_backoff_secs: f64,
    /// Jitter amplitude in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor in `[1 − jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
    /// Watchdog timeout as a multiple of the predicted clean transfer
    /// time (loss and wedge detection latency).
    pub timeout_factor: f64,
    /// Watchdog floor, seconds.
    pub min_timeout_secs: f64,
    /// Watchdog ceiling, seconds (bounds detection latency through
    /// outages, where the predicted transfer time explodes).
    pub max_timeout_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 0.05,
            backoff_multiplier: 2.0,
            max_backoff_secs: 2.0,
            jitter: 0.5,
            timeout_factor: 2.0,
            min_timeout_secs: 0.25,
            max_timeout_secs: 5.0,
        }
    }
}

impl RetryPolicy {
    /// Panics if the policy is internally inconsistent.
    fn validate(&self) {
        assert!(self.max_attempts >= 1, "need at least one attempt");
        assert!(
            self.base_backoff_secs >= 0.0,
            "backoff must be non-negative"
        );
        assert!(self.backoff_multiplier >= 1.0, "backoff must not shrink");
        assert!(
            self.max_backoff_secs >= self.base_backoff_secs,
            "backoff cap below base"
        );
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter must be in [0, 1]"
        );
        assert!(
            self.timeout_factor >= 0.0,
            "timeout factor must be non-negative"
        );
        assert!(
            self.min_timeout_secs >= 0.0 && self.max_timeout_secs >= self.min_timeout_secs,
            "timeout bounds inverted"
        );
    }

    /// Backoff before retry number `attempt + 1`, after `attempt` failed
    /// attempts of request `request`. Exponential with deterministic
    /// jitter hashed from `(seed, request, attempt)`.
    pub fn backoff_secs(&self, seed: u64, request: u64, attempt: u32) -> f64 {
        let raw = self.base_backoff_secs
            * self
                .backoff_multiplier
                .powi(attempt.saturating_sub(1) as i32);
        let capped = raw.min(self.max_backoff_secs);
        let u = unit_hash(seed, request, attempt, JITTER_SALT);
        capped * (1.0 + self.jitter * (u - 0.5))
    }

    /// Watchdog timeout for a transfer whose clean duration is predicted
    /// at `predicted_transfer_secs` (clamped to the policy's bounds).
    pub fn timeout_secs(&self, predicted_transfer_secs: f64) -> f64 {
        let raw = if predicted_transfer_secs.is_finite() {
            self.timeout_factor * predicted_transfer_secs
        } else {
            self.max_timeout_secs
        };
        raw.clamp(self.min_timeout_secs, self.max_timeout_secs)
    }
}

/// Outcome of one object fetch through a [`FaultyConnection`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FetchOutcome {
    /// Timing: `start` is when the first attempt was issued, `finish` is
    /// when the fetch resolved (delivered, exhausted or abandoned).
    /// `bytes` is the *delivered* payload — 0 unless `delivered`.
    pub result: FetchResult,
    /// Transfer attempts actually made (0 if abandoned before the first).
    pub attempts: u32,
    /// Whether the payload arrived in full.
    pub delivered: bool,
    /// Whether the fetch was abandoned because even a clean transfer was
    /// projected to overrun its deadline.
    pub abandoned: bool,
    /// Partial bytes moved on failed attempts and thrown away.
    pub wasted_bytes: u64,
    /// Wall-clock lost to failed attempts, backoffs and reconnects.
    pub retry_secs: f64,
}

/// An in-flight fetch started via [`FaultyConnection::begin_fetch`]:
/// the event-driven "start fetch → completion event at t" interface.
/// `completes_at_secs` is where the driver schedules the completion
/// event; `outcome` is what that event resolves to. The outcome exists
/// at issue time because delivery is a pure function of (trace, plan,
/// policy, clock) — precomputing it is the honest discrete-event
/// formulation, not a shortcut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingFetch {
    /// Connection time at which the fetch resolves, seconds.
    pub completes_at_secs: f64,
    /// The resolution the completion event delivers.
    pub outcome: FetchOutcome,
}

impl FetchOutcome {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// Bytes that crossed the wire for this request, useful or not.
    pub fn wire_bytes(&self) -> u64 {
        self.result.bytes + self.wasted_bytes
    }
}

/// Cached telemetry handles for the fetch hot path. Handles are resolved
/// once (name lookup takes a lock); updates are lock-free atomics. The
/// default is all-no-op, matching disabled telemetry.
#[derive(Debug, Clone, Default)]
struct NetMetrics {
    tel: Telemetry,
    requests: Counter,
    attempts: Counter,
    retries: Counter,
    delivered: Counter,
    abandoned: Counter,
    failed: Counter,
    outcome_clean: Counter,
    outcome_request_lost: Counter,
    outcome_reset: Counter,
    outcome_stuck: Counter,
    watchdog_fires: Counter,
    backoff_waits: Counter,
    backoff_secs: Histogram,
    fetch_duration_secs: Histogram,
    bytes_wasted: Counter,
}

/// Pre-resolved `net.*` telemetry handles that many connections can
/// share. Resolving a handle takes a registry lock per name; a fleet of
/// ten thousand sessions must not pay that 15-name lookup per session.
/// Build one per registry with [`ConnectionMetrics::new`] and attach it
/// to each connection via [`FaultyConnection::with_metrics`] — the
/// handles are cheap atomics under `Arc`, so the clone per connection is
/// a few pointer copies. Counter semantics are identical to per-session
/// [`FaultyConnection::with_telemetry`]: the registry already merges
/// same-name handles, this just skips the redundant lookups.
#[derive(Debug, Clone, Default)]
pub struct ConnectionMetrics {
    inner: NetMetrics,
}

impl ConnectionMetrics {
    /// Resolves the `net.*` handle set once against `tel`'s registry.
    pub fn new(tel: &Telemetry) -> Self {
        ConnectionMetrics {
            inner: NetMetrics::new(tel),
        }
    }
}

impl NetMetrics {
    fn new(tel: &Telemetry) -> Self {
        NetMetrics {
            tel: tel.clone(),
            requests: tel.counter("net.fetch.requests"),
            attempts: tel.counter("net.fetch.attempts"),
            retries: tel.counter("net.fetch.retries"),
            delivered: tel.counter("net.fetch.delivered"),
            abandoned: tel.counter("net.fetch.abandoned"),
            failed: tel.counter("net.fetch.failed"),
            outcome_clean: tel.counter("net.fetch.outcome.clean"),
            outcome_request_lost: tel.counter("net.fetch.outcome.request_lost"),
            outcome_reset: tel.counter("net.fetch.outcome.reset"),
            outcome_stuck: tel.counter("net.fetch.outcome.stuck"),
            watchdog_fires: tel.counter("net.watchdog.fires"),
            backoff_waits: tel.counter("net.backoff.waits"),
            backoff_secs: tel.histogram("net.backoff_secs"),
            fetch_duration_secs: tel.histogram("net.fetch_duration_secs"),
            bytes_wasted: tel.counter("bytes.wasted"),
        }
    }
}

/// A persistent connection with fault injection and recovery.
///
/// Composes the trace-driven transfer math of
/// [`Connection`](crate::Connection) with a [`FaultPlan`] and a
/// [`RetryPolicy`]. With [`FaultPlan::none`] every fetch is byte- and
/// clock-identical to the plain connection.
#[derive(Debug, Clone)]
pub struct FaultyConnection {
    /// Shared, immutable inputs: a fleet of connections over the same
    /// link holds one trace/plan allocation, not one copy per session.
    trace: Arc<BandwidthTrace>,
    plan: Arc<FaultPlan>,
    policy: RetryPolicy,
    /// Per-request overhead, seconds.
    request_overhead_secs: f64,
    /// The connection clock: when the link is next free.
    now: f64,
    /// Monotone request counter — the hash key for fault decisions.
    requests: u64,
    /// Payload bytes delivered in full.
    total_bytes: u64,
    /// Partial bytes wasted by failed attempts.
    wasted_bytes: u64,
    /// Retries beyond first attempts, across all requests.
    retries: u64,
    /// Cached telemetry handles (all-no-op unless `with_telemetry`).
    metrics: NetMetrics,
}

impl FaultyConnection {
    /// Opens a connection at time 0 over `trace` with the given fault plan
    /// and retry policy. Panics on an inconsistent policy.
    ///
    /// Accepts owned values (which allocate one `Arc` each) or
    /// pre-shared `Arc`s — fleet callers pass `Arc` clones so N sessions
    /// over the same link share a single trace allocation.
    pub fn new(
        trace: impl Into<Arc<BandwidthTrace>>,
        plan: impl Into<Arc<FaultPlan>>,
        policy: RetryPolicy,
    ) -> Self {
        policy.validate();
        FaultyConnection {
            trace: trace.into(),
            plan: plan.into(),
            policy,
            request_overhead_secs: crate::Connection::DEFAULT_OVERHEAD_SECS,
            now: 0.0,
            requests: 0,
            total_bytes: 0,
            wasted_bytes: 0,
            retries: 0,
            metrics: NetMetrics::default(),
        }
    }

    /// Overrides the per-request overhead.
    pub fn with_request_overhead(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "overhead must be non-negative");
        self.request_overhead_secs = secs;
        self
    }

    /// Attaches telemetry: fetches record the `net.fetch.*` funnel,
    /// per-attempt outcomes, backoff waits and wasted bytes, and emit
    /// `fetch_fault` / `fetch_abandoned` events stamped with the
    /// connection clock. Telemetry only observes — it never changes a
    /// fetch outcome or the clock.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.metrics = NetMetrics::new(tel);
        self
    }

    /// Attaches a pre-resolved, shared handle set instead of resolving
    /// `net.*` names against the registry per connection — same
    /// observable counters as [`FaultyConnection::with_telemetry`],
    /// minus the per-session name lookups a fleet cannot afford.
    pub fn with_metrics(mut self, metrics: &ConnectionMetrics) -> Self {
        self.metrics = metrics.inner.clone();
        self
    }

    /// The connection clock: when the link is next free, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Payload bytes delivered in full so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Partial bytes wasted by failed attempts so far.
    pub fn wasted_bytes(&self) -> u64 {
        self.wasted_bytes
    }

    /// Retries beyond first attempts, across all requests so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The underlying bandwidth trace.
    pub fn trace(&self) -> &BandwidthTrace {
        &self.trace
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Advances the clock to `t` if the link is idle before then.
    pub fn idle_until(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Fetches one object with no deadline.
    pub fn fetch(&mut self, bytes: u64) -> FetchOutcome {
        self.fetch_with_deadline(bytes, f64::INFINITY)
    }

    /// Non-blocking counterpart of [`FaultyConnection::fetch_with_deadline`]
    /// for discrete-event drivers: starts the fetch now and reports when
    /// it will resolve, so the caller can schedule a completion event at
    /// `completes_at_secs` instead of blocking on the transfer.
    ///
    /// Because the whole delivery path is deterministic in the trace,
    /// plan and clock, the outcome is fully known at issue time — the
    /// returned [`PendingFetch`] carries it. The connection clock still
    /// advances to the resolution instant (the link is busy until then),
    /// exactly as the synchronous call would; the two interfaces are
    /// byte-identical per fetch.
    pub fn begin_fetch(&mut self, bytes: u64, deadline_secs: f64) -> PendingFetch {
        let outcome = self.fetch_with_deadline(bytes, deadline_secs);
        PendingFetch {
            completes_at_secs: outcome.result.finish,
            outcome,
        }
    }

    /// Fetches a batch of objects back-to-back with no deadline.
    pub fn fetch_batch(&mut self, sizes: &[u64]) -> Vec<FetchOutcome> {
        sizes.iter().map(|&b| self.fetch(b)).collect()
    }

    /// Fetches one object of `bytes`, abandoning when even a clean
    /// transfer is projected to finish after `deadline_secs`.
    ///
    /// The loop per attempt: project the clean finish (request overhead +
    /// exact trace integration); abandon if it overruns the deadline;
    /// otherwise consult the fault plan. A clean attempt delivers and
    /// advances the clock exactly as [`Connection::fetch`]
    /// (crate::Connection::fetch) would. A lost or wedged attempt burns
    /// the watchdog timeout; a reset burns the partial transfer time plus
    /// the reconnect penalty and wastes the partial bytes. Failed attempts
    /// back off per the policy until the attempt budget is exhausted.
    pub fn fetch_with_deadline(&mut self, bytes: u64, deadline_secs: f64) -> FetchOutcome {
        let request = self.requests;
        self.requests += 1;
        self.metrics.requests.inc();
        let start = self.now;
        let mut attempts = 0u32;
        let mut wasted = 0u64;
        let mut retry_secs = 0.0;
        let mut delivered = false;
        let mut abandoned = false;

        loop {
            if attempts >= self.policy.max_attempts {
                break;
            }
            let payload_start = self.now + self.request_overhead_secs;
            let clean_dt = self.trace.transfer_time(payload_start, bytes as f64);
            // Deadline-aware abandonment: even a fault-free transfer would
            // miss the deadline, so don't waste the wire on it.
            if payload_start + clean_dt > deadline_secs {
                abandoned = true;
                if self.metrics.tel.is_enabled() {
                    self.metrics.tel.emit(
                        "fetch_abandoned",
                        Some(self.now),
                        Json::obj([
                            ("request", Json::from(request)),
                            ("attempts", Json::from(attempts)),
                            ("bytes", Json::from(bytes)),
                            ("deadline_secs", Json::from(deadline_secs)),
                            (
                                "projected_finish_secs",
                                Json::from(payload_start + clean_dt),
                            ),
                        ]),
                    );
                }
                break;
            }
            attempts += 1;
            self.metrics.attempts.inc();
            let fault = self.plan.decide(request, attempts, self.now);
            match fault {
                Fault::None => {
                    self.now = payload_start + clean_dt;
                    self.total_bytes += bytes;
                    delivered = true;
                    self.metrics.outcome_clean.inc();
                }
                Fault::RequestLost | Fault::Stuck => {
                    // No useful bytes; the watchdog fires after the
                    // timeout scaled from the predicted transfer time.
                    let lost = self.request_overhead_secs + self.policy.timeout_secs(clean_dt);
                    self.now += lost;
                    retry_secs += lost;
                    self.metrics.watchdog_fires.inc();
                    if matches!(fault, Fault::RequestLost) {
                        self.metrics.outcome_request_lost.inc();
                    } else {
                        self.metrics.outcome_stuck.inc();
                    }
                }
                Fault::Reset { progress } => {
                    let partial = ((bytes as f64) * progress).floor() as u64;
                    let partial_dt = self.trace.transfer_time(payload_start, partial as f64);
                    let lost =
                        self.request_overhead_secs + partial_dt + self.plan.reconnect_penalty_secs;
                    self.now += lost;
                    retry_secs += lost;
                    wasted += partial;
                    self.metrics.outcome_reset.inc();
                }
            }
            if fault != Fault::None && self.metrics.tel.is_enabled() {
                self.metrics.tel.emit(
                    "fetch_fault",
                    Some(self.now),
                    Json::obj([
                        ("request", Json::from(request)),
                        ("attempt", Json::from(attempts)),
                        ("bytes", Json::from(bytes)),
                        (
                            "kind",
                            Json::from(match fault {
                                // pano-lint: allow(panic-reach): arm is dead — this emit only runs under `fault != Fault::None` above
                                Fault::None => unreachable!(),
                                Fault::RequestLost => "request_lost",
                                Fault::Reset { .. } => "reset",
                                Fault::Stuck => "stuck",
                            }),
                        ),
                    ]),
                );
            }
            if delivered {
                break;
            }
            if attempts < self.policy.max_attempts {
                let b = self.policy.backoff_secs(self.plan.seed, request, attempts);
                self.now += b;
                retry_secs += b;
                self.metrics.backoff_waits.inc();
                self.metrics.backoff_secs.record(b);
            }
        }

        self.wasted_bytes += wasted;
        self.retries += attempts.saturating_sub(1) as u64;
        self.metrics.retries.add(attempts.saturating_sub(1) as u64);
        self.metrics.bytes_wasted.add(wasted);
        self.metrics.fetch_duration_secs.record(self.now - start);
        if delivered {
            self.metrics.delivered.inc();
        } else if abandoned {
            self.metrics.abandoned.inc();
        } else {
            self.metrics.failed.inc();
        }
        FetchOutcome {
            result: FetchResult {
                start,
                finish: self.now,
                bytes: if delivered { bytes } else { 0 },
            },
            attempts,
            delivered,
            abandoned,
            wasted_bytes: wasted,
            retry_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Connection;

    fn mbps(v: f64) -> BandwidthTrace {
        BandwidthTrace::constant(v * 1e6, 300.0, 1.0)
    }

    #[test]
    fn zero_fault_plan_matches_plain_connection() {
        let tr = BandwidthTrace::markov_4g(1e6, 120.0, 17);
        let mut plain = Connection::new(tr.clone());
        let mut faulty = FaultyConnection::new(tr, FaultPlan::none(), RetryPolicy::default());
        let sizes = [40_000u64, 80_000, 10_000, 0, 120_000];
        for &b in &sizes {
            let p = plain.fetch(b);
            let f = faulty.fetch(b);
            assert_eq!(p, f.result, "byte-identical timing for {b} bytes");
            assert_eq!(f.attempts, 1);
            assert!(f.delivered);
            assert!(!f.abandoned);
            assert_eq!(f.wasted_bytes, 0);
            assert_eq!(f.retry_secs, 0.0);
        }
        assert_eq!(plain.total_bytes(), faulty.total_bytes());
        assert_eq!(faulty.wasted_bytes(), 0);
        assert_eq!(faulty.retries(), 0);
    }

    #[test]
    fn total_loss_exhausts_the_retry_budget() {
        let plan = FaultPlan {
            request_loss: 1.0,
            seed: 3,
            ..FaultPlan::none()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut c =
            FaultyConnection::new(mbps(1.0), plan.clone(), policy).with_request_overhead(0.0);
        let o = c.fetch(125_000);
        assert!(!o.delivered);
        assert!(!o.abandoned);
        assert_eq!(o.attempts, 3);
        assert_eq!(o.result.bytes, 0);
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.retries(), 2);
        // Clock math: 3 watchdog timeouts (2 s each: 2 × the 1 s clean
        // transfer) plus the two deterministic backoffs.
        let expected =
            3.0 * 2.0 + policy.backoff_secs(plan.seed, 0, 1) + policy.backoff_secs(plan.seed, 0, 2);
        assert!(
            (o.result.finish - o.result.start - expected).abs() < 1e-9,
            "duration {} vs expected {expected}",
            o.result.duration()
        );
        assert!((o.retry_secs - expected).abs() < 1e-9);
    }

    #[test]
    fn deadline_abandons_before_wasting_the_wire() {
        let mut c = FaultyConnection::new(mbps(1.0), FaultPlan::none(), RetryPolicy::default())
            .with_request_overhead(0.0);
        // 125 KB at 1 Mbps needs 1 s; the deadline allows 0.5 s.
        let o = c.fetch_with_deadline(125_000, 0.5);
        assert!(o.abandoned);
        assert!(!o.delivered);
        assert_eq!(o.attempts, 0);
        assert_eq!(o.result.start, o.result.finish, "no wire time spent");
        assert_eq!(c.now(), 0.0);
        // A feasible deadline delivers normally.
        let ok = c.fetch_with_deadline(125_000, 2.0);
        assert!(ok.delivered);
        assert!((ok.result.finish - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_burst_windows_reset_every_attempt() {
        let plan = FaultPlan::none().with_reset_burst(0.0, 1_000.0);
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let mut c = FaultyConnection::new(mbps(1.0), plan, policy);
        let o = c.fetch(100_000);
        assert!(!o.delivered);
        assert_eq!(o.attempts, 2);
        assert!(o.wasted_bytes <= 2 * 100_000);
        assert!(o.result.finish > o.result.start);
        // Outside the burst the same plan is clean.
        let plan2 = FaultPlan::none().with_reset_burst(500.0, 600.0);
        let mut c2 = FaultyConnection::new(mbps(1.0), plan2, RetryPolicy::default());
        assert!(c2.fetch(100_000).delivered);
    }

    #[test]
    fn partial_loss_recovers_with_retries() {
        let plan = FaultPlan::uniform(0.5, 11);
        let mut c = FaultyConnection::new(mbps(2.0), plan, RetryPolicy::default());
        let outcomes = c.fetch_batch(&vec![30_000u64; 40]);
        let delivered = outcomes.iter().filter(|o| o.delivered).count();
        assert!(
            delivered > 10,
            "most fetches should recover: {delivered}/40"
        );
        assert!(c.retries() > 0, "a 50% loss rate must force retries");
        let retried_ok = outcomes.iter().any(|o| o.delivered && o.attempts > 1);
        assert!(retried_ok, "some delivery should need a retry");
    }

    #[test]
    fn gilbert_elliott_loss_is_deterministic_and_bursty() {
        let plan = FaultPlan::gilbert_elliott(0.05, 0.2, 0.02, 0.9, 21);
        let lost: Vec<bool> = (0..4000u64)
            .map(|r| plan.decide(r, 0, 0.0) == Fault::RequestLost)
            .collect();
        // Deterministic replay, request by request.
        for r in 0..200u64 {
            assert_eq!(plan.decide(r, 0, 0.0), plan.decide(r, 0, 0.0));
        }
        let total = lost.iter().filter(|&&l| l).count();
        assert!(total > 0, "the bad state must lose requests");
        // Correlation: loss given the previous request was lost must be
        // far likelier than the unconditional rate — the signature of
        // bursts, absent by construction from the uniform plan.
        let mut after_loss = 0usize;
        let mut after_loss_lost = 0usize;
        for w in lost.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    after_loss_lost += 1;
                }
            }
        }
        let unconditional = total as f64 / lost.len() as f64;
        let conditional = after_loss_lost as f64 / after_loss.max(1) as f64;
        assert!(
            conditional > unconditional * 1.5,
            "conditional {conditional:.3} vs unconditional {unconditional:.3}"
        );
    }

    #[test]
    fn gilbert_elliott_seeds_give_independent_burst_timelines() {
        // loss_good = 0, loss_bad = 1: the loss pattern *is* the state
        // pattern, so differing sequences prove independent chains.
        let a = FaultPlan::gilbert_elliott(0.1, 0.3, 0.0, 1.0, 1);
        let b = FaultPlan::gilbert_elliott(0.1, 0.3, 0.0, 1.0, 2);
        let seq = |p: &FaultPlan| -> Vec<bool> {
            (0..512u64)
                .map(|r| p.decide(r, 0, 0.0) == Fault::RequestLost)
                .collect()
        };
        assert_ne!(seq(&a), seq(&b));
        // And the chain actually visits both states.
        let sa = seq(&a);
        assert!(sa.iter().any(|&l| l) && sa.iter().any(|&l| !l));
    }

    #[test]
    fn gilbert_elliott_activity_and_validation() {
        assert!(FaultPlan::gilbert_elliott(0.1, 0.3, 0.0, 0.5, 1).is_active());
        assert!(!FaultPlan::gilbert_elliott(0.1, 0.3, 0.0, 0.0, 1).is_active());
        let r = std::panic::catch_unwind(|| FaultPlan::gilbert_elliott(1.5, 0.3, 0.0, 0.5, 1));
        assert!(r.is_err(), "out-of-range probabilities must be rejected");
    }

    #[test]
    fn fault_plan_json_without_burst_loss_still_parses() {
        // Serialised plans from before the Gilbert–Elliott field existed.
        let legacy = r#"{"seed":7,"request_loss":0.1,"reset_rate":0.05,"stall_rate":0.0,"reconnect_penalty_secs":0.2,"reset_bursts":[]}"#;
        let plan: FaultPlan = serde_json::from_str(legacy).expect("legacy plans parse");
        assert_eq!(plan.burst_loss, None);
        assert_eq!(plan.request_loss, 0.1);
        // And the new field round-trips.
        let ge = FaultPlan::gilbert_elliott(0.1, 0.3, 0.01, 0.8, 9);
        let back: FaultPlan =
            serde_json::from_str(&serde_json::to_string(&ge).expect("ser")).expect("de");
        assert_eq!(back, ge);
    }

    #[test]
    fn backoff_grows_exponentially_under_the_cap() {
        let p = RetryPolicy::default();
        let b1 = p.backoff_secs(7, 0, 1);
        let b2 = p.backoff_secs(7, 0, 2);
        let b3 = p.backoff_secs(7, 0, 3);
        // Jitter is ±25 %, growth is 2×: ranges cannot overlap.
        assert!(b2 > b1, "{b1} vs {b2}");
        assert!(b3 > b2, "{b2} vs {b3}");
        // Deterministic.
        assert_eq!(b2, p.backoff_secs(7, 0, 2));
        // Capped.
        let late = p.backoff_secs(7, 0, 30);
        assert!(late <= p.max_backoff_secs * 1.25 + 1e-12);
    }

    #[test]
    fn timeout_clamps_to_policy_bounds() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout_secs(0.0), p.min_timeout_secs);
        assert!((p.timeout_secs(1.0) - 2.0).abs() < 1e-12);
        assert_eq!(p.timeout_secs(1e9), p.max_timeout_secs);
        assert_eq!(p.timeout_secs(f64::INFINITY), p.max_timeout_secs);
    }

    #[test]
    fn idle_until_moves_clock_forward_only() {
        let mut c = FaultyConnection::new(mbps(1.0), FaultPlan::none(), RetryPolicy::default());
        c.idle_until(5.0);
        assert_eq!(c.now(), 5.0);
        c.idle_until(2.0);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn decide_is_monotone_in_the_loss_rate() {
        // Raising the rate only adds faults: every (request, attempt) that
        // faults at rate p also faults at rate q > p.
        let lo = FaultPlan::uniform(0.1, 99);
        let hi = FaultPlan::uniform(0.4, 99);
        for req in 0..200u64 {
            for att in 1..4u32 {
                if lo.decide(req, att, 0.0) != Fault::None {
                    assert_ne!(hi.decide(req, att, 0.0), Fault::None, "req {req} att {att}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempt_policy_panics() {
        FaultyConnection::new(
            mbps(1.0),
            FaultPlan::none(),
            RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1]")]
    fn out_of_range_loss_rate_panics() {
        FaultPlan::uniform(1.5, 0);
    }

    #[test]
    fn telemetry_matches_connection_accounting() {
        use pano_telemetry::{RunId, Telemetry};
        let (tel, sink) = Telemetry::in_memory(RunId::from_parts("net-test", 11), 11);
        let plan = FaultPlan::uniform(0.5, 11);
        let mut c =
            FaultyConnection::new(mbps(2.0), plan, RetryPolicy::default()).with_telemetry(&tel);
        let sizes = vec![30_000u64; 40];
        let outcomes = c.fetch_batch(&sizes);

        let snap = tel.snapshot();
        let count = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
        assert_eq!(count("net.fetch.requests"), 40);
        assert_eq!(count("net.fetch.retries"), c.retries());
        assert_eq!(count("bytes.wasted"), c.wasted_bytes());
        assert_eq!(
            count("net.fetch.attempts"),
            outcomes.iter().map(|o| o.attempts as u64).sum::<u64>()
        );
        assert_eq!(
            count("net.fetch.delivered"),
            outcomes.iter().filter(|o| o.delivered).count() as u64
        );
        assert_eq!(
            count("net.fetch.delivered") + count("net.fetch.abandoned") + count("net.fetch.failed"),
            40
        );
        // Every attempt resolved to exactly one outcome class.
        assert_eq!(
            count("net.fetch.outcome.clean")
                + count("net.fetch.outcome.request_lost")
                + count("net.fetch.outcome.reset")
                + count("net.fetch.outcome.stuck"),
            count("net.fetch.attempts")
        );
        // Watchdog fires on losses and wedges only.
        assert_eq!(
            count("net.watchdog.fires"),
            count("net.fetch.outcome.request_lost") + count("net.fetch.outcome.stuck")
        );
        assert_eq!(snap.histograms["net.fetch_duration_secs"].count, 40);
        // The event stream carries one record per injected fault.
        let faults = sink
            .events()
            .iter()
            .filter(|e| e.kind == "fetch_fault")
            .count() as u64;
        assert_eq!(
            faults,
            count("net.fetch.attempts") - count("net.fetch.outcome.clean")
        );
    }

    #[test]
    fn begin_fetch_matches_the_synchronous_interface() {
        // Shared-Arc construction: two connections over one trace/plan
        // allocation, one driven synchronously and one event-style.
        let tr = Arc::new(BandwidthTrace::markov_4g(1e6, 120.0, 9));
        let plan = Arc::new(FaultPlan::uniform(0.3, 77));
        let mut sync_c = FaultyConnection::new(tr.clone(), plan.clone(), RetryPolicy::default());
        let mut evt_c = FaultyConnection::new(tr, plan, RetryPolicy::default());
        for &b in &[40_000u64, 80_000, 10_000, 0, 120_000] {
            let s = sync_c.fetch_with_deadline(b, 30.0);
            let p = evt_c.begin_fetch(b, 30.0);
            assert_eq!(s, p.outcome, "{b} bytes");
            assert_eq!(p.completes_at_secs, p.outcome.result.finish);
            assert_eq!(evt_c.now(), p.completes_at_secs);
        }
        assert_eq!(sync_c.now(), evt_c.now());
    }

    #[test]
    fn shared_metrics_match_per_connection_telemetry() {
        use pano_telemetry::{RunId, Telemetry};
        let tr = BandwidthTrace::markov_4g(1.5e6, 60.0, 4);
        let plan = FaultPlan::uniform(0.4, 6);
        let sizes = vec![25_000u64; 20];

        let tel_a = Telemetry::recording(RunId::from_parts("net-shared", 1), 1);
        let mut a = FaultyConnection::new(tr.clone(), plan.clone(), RetryPolicy::default())
            .with_telemetry(&tel_a);

        let tel_b = Telemetry::recording(RunId::from_parts("net-shared", 2), 2);
        let shared = ConnectionMetrics::new(&tel_b);
        let mut b = FaultyConnection::new(tr, plan, RetryPolicy::default()).with_metrics(&shared);

        assert_eq!(a.fetch_batch(&sizes), b.fetch_batch(&sizes));
        let sa = tel_a.snapshot();
        let sb = tel_b.snapshot();
        assert_eq!(sa.counters, sb.counters);
        assert_eq!(
            sa.histograms["net.fetch_duration_secs"].count,
            sb.histograms["net.fetch_duration_secs"].count
        );
    }

    #[test]
    fn telemetry_does_not_perturb_outcomes() {
        use pano_telemetry::{RunId, Telemetry};
        let tr = BandwidthTrace::markov_4g(1e6, 120.0, 23);
        let plan = FaultPlan::uniform(0.3, 5);
        let tel = Telemetry::recording(RunId::from_parts("perturb", 5), 5);
        let mut bare = FaultyConnection::new(tr.clone(), plan.clone(), RetryPolicy::default());
        let mut instrumented =
            FaultyConnection::new(tr, plan, RetryPolicy::default()).with_telemetry(&tel);
        let sizes = [40_000u64, 80_000, 10_000, 0, 120_000, 60_000];
        assert_eq!(bare.fetch_batch(&sizes), instrumented.fetch_batch(&sizes));
        assert_eq!(bare.now(), instrumented.now());
    }

    #[test]
    fn abandonment_emits_a_deadline_event() {
        use pano_telemetry::{Json, RunId, Telemetry};
        let (tel, sink) = Telemetry::in_memory(RunId::from_parts("abandon", 1), 1);
        let mut c = FaultyConnection::new(mbps(1.0), FaultPlan::none(), RetryPolicy::default())
            .with_request_overhead(0.0)
            .with_telemetry(&tel);
        let o = c.fetch_with_deadline(125_000, 0.5);
        assert!(o.abandoned);
        assert_eq!(tel.snapshot().counters["net.fetch.abandoned"], 1);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "fetch_abandoned");
        assert_eq!(
            events[0].fields.get("bytes").and_then(Json::as_f64),
            Some(125_000.0)
        );
    }
}

#[cfg(test)]
mod fault_properties {
    use super::*;
    use crate::Connection;
    use proptest::prelude::*;

    proptest! {
        /// Same (trace, fault seed, retry policy) → identical outcomes.
        #[test]
        fn prop_deterministic_given_seed_and_policy(
            sizes in proptest::collection::vec(0u64..150_000, 1..15),
            loss in 0.0f64..0.6,
            fault_seed in 0u64..1_000,
            trace_seed in 0u64..50,
            max_attempts in 1u32..6,
        ) {
            let tr = BandwidthTrace::markov_4g(1e6, 60.0, trace_seed);
            let plan = FaultPlan::uniform(loss, fault_seed);
            let policy = RetryPolicy { max_attempts, ..RetryPolicy::default() };
            let mut a = FaultyConnection::new(tr.clone(), plan.clone(), policy);
            let mut b = FaultyConnection::new(tr, plan, policy);
            prop_assert_eq!(a.fetch_batch(&sizes), b.fetch_batch(&sizes));
        }

        /// Bytes are conserved (delivered + wasted == on the wire) and the
        /// clock is monotone across retries and resets.
        #[test]
        fn prop_conserves_bytes_with_monotone_clock(
            sizes in proptest::collection::vec(1u64..150_000, 1..15),
            loss in 0.0f64..0.8,
            fault_seed in 0u64..1_000,
            trace_seed in 0u64..50,
        ) {
            let tr = BandwidthTrace::markov_4g(1.5e6, 60.0, trace_seed);
            let mut c = FaultyConnection::new(
                tr,
                FaultPlan::uniform(loss, fault_seed),
                RetryPolicy::default(),
            );
            let outcomes = c.fetch_batch(&sizes);
            let mut delivered_sum = 0u64;
            let mut wasted_sum = 0u64;
            for (o, &requested) in outcomes.iter().zip(&sizes) {
                // Delivered all-or-nothing; waste bounded by the attempts.
                if o.delivered {
                    prop_assert_eq!(o.result.bytes, requested);
                    prop_assert!(o.attempts >= 1);
                } else {
                    prop_assert_eq!(o.result.bytes, 0);
                }
                prop_assert!(o.wasted_bytes <= o.attempts as u64 * requested);
                prop_assert_eq!(o.wire_bytes(), o.result.bytes + o.wasted_bytes);
                prop_assert!(o.result.finish >= o.result.start);
                delivered_sum += o.result.bytes;
                wasted_sum += o.wasted_bytes;
            }
            // Back-to-back requests: each starts exactly when the previous
            // one resolved — the clock never jumps backwards.
            for w in outcomes.windows(2) {
                prop_assert!((w[1].result.start - w[0].result.finish).abs() < 1e-9);
            }
            prop_assert_eq!(c.total_bytes(), delivered_sum);
            prop_assert_eq!(c.wasted_bytes(), wasted_sum);
        }

        /// The zero-fault wrapper is byte-identical to the plain
        /// connection on any trace and request sequence.
        #[test]
        fn prop_zero_fault_equals_connection(
            sizes in proptest::collection::vec(0u64..200_000, 1..20),
            mean in 2e5f64..5e6,
            trace_seed in 0u64..50,
            overhead in 0.0f64..0.05,
        ) {
            let tr = BandwidthTrace::markov_4g(mean, 60.0, trace_seed);
            let mut plain = Connection::new(tr.clone()).with_request_overhead(overhead);
            let mut faulty =
                FaultyConnection::new(tr, FaultPlan::none(), RetryPolicy::default())
                    .with_request_overhead(overhead);
            let expect = plain.fetch_batch(&sizes);
            let got: Vec<FetchResult> =
                faulty.fetch_batch(&sizes).iter().map(|o| o.result).collect();
            prop_assert_eq!(expect, got);
            prop_assert_eq!(plain.total_bytes(), faulty.total_bytes());
        }
    }
}
