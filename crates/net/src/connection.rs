//! The persistent-connection download model.
//!
//! One client keeps one HTTP(S) connection to its CDN edge. Objects are
//! requested sequentially; each request costs a fixed request overhead
//! (request/response turnaround on the persistent connection) before the
//! payload drains the bandwidth trace. The trace is the single source of
//! truth for capacity, so two clients with the same trace and the same
//! request sequence finish at identical times — simulation determinism
//! the experiments rely on.

use pano_trace::BandwidthTrace;
use serde::{Deserialize, Serialize};

/// Outcome of fetching one object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FetchResult {
    /// When the request was issued, seconds.
    pub start: f64,
    /// When the last byte arrived, seconds.
    pub finish: f64,
    /// Payload size, bytes.
    pub bytes: u64,
}

impl FetchResult {
    /// Transfer duration including request overhead, seconds.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }

    /// Effective goodput, bits per second.
    pub fn goodput_bps(&self) -> f64 {
        if self.duration() <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / self.duration()
        }
    }
}

/// A persistent connection bound to a bandwidth trace.
#[derive(Debug, Clone)]
pub struct Connection {
    trace: BandwidthTrace,
    /// Per-request overhead, seconds (request/response turnaround).
    request_overhead_secs: f64,
    /// The connection clock: when the link is next free.
    now: f64,
    /// Total bytes transferred so far.
    total_bytes: u64,
}

impl Connection {
    /// Default request overhead: 2 ms per object. Tiles are fetched as
    /// separate objects but over a persistent, multiplexed connection
    /// (the paper's §7 client), so each additional object costs request
    /// serialisation, not a full RTT.
    pub const DEFAULT_OVERHEAD_SECS: f64 = 0.002;

    /// Opens a connection at time 0 over `trace`.
    pub fn new(trace: BandwidthTrace) -> Self {
        Connection {
            trace,
            request_overhead_secs: Self::DEFAULT_OVERHEAD_SECS,
            now: 0.0,
            total_bytes: 0,
        }
    }

    /// Overrides the per-request overhead.
    pub fn with_request_overhead(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "overhead must be non-negative");
        self.request_overhead_secs = secs;
        self
    }

    /// The connection clock: when the link is next free, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The underlying bandwidth trace.
    pub fn trace(&self) -> &BandwidthTrace {
        &self.trace
    }

    /// Advances the clock to `t` if the link is idle before then (the
    /// player waiting before issuing the next request).
    pub fn idle_until(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Fetches one object of `bytes`, returning its timing. The request is
    /// issued at the connection clock; the clock advances to completion.
    pub fn fetch(&mut self, bytes: u64) -> FetchResult {
        let start = self.now;
        let payload_start = start + self.request_overhead_secs;
        let dt = self.trace.transfer_time(payload_start, bytes as f64);
        let finish = payload_start + dt;
        self.now = finish;
        self.total_bytes += bytes;
        FetchResult {
            start,
            finish,
            bytes,
        }
    }

    /// Fetches a batch of objects back-to-back on the persistent
    /// connection (the per-chunk tile fetch). Returns per-object results;
    /// the batch finish time is the last element's `finish`.
    pub fn fetch_batch(&mut self, sizes: &[u64]) -> Vec<FetchResult> {
        sizes.iter().map(|&b| self.fetch(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(v: f64) -> BandwidthTrace {
        BandwidthTrace::constant(v * 1e6, 300.0, 1.0)
    }

    #[test]
    fn single_fetch_timing() {
        let mut c = Connection::new(mbps(1.0)).with_request_overhead(0.0);
        // 125 KB at 1 Mbps = 1 s.
        let r = c.fetch(125_000);
        assert!((r.finish - 1.0).abs() < 1e-9);
        assert!((r.goodput_bps() - 1e6).abs() < 1.0);
        assert_eq!(c.total_bytes(), 125_000);
    }

    #[test]
    fn request_overhead_is_charged_per_object() {
        let mut a = Connection::new(mbps(1.0)).with_request_overhead(0.0);
        let mut b = Connection::new(mbps(1.0)).with_request_overhead(0.1);
        let sizes = vec![12_500u64; 10];
        let ra = a.fetch_batch(&sizes);
        let rb = b.fetch_batch(&sizes);
        let fa = ra.last().unwrap().finish;
        let fb = rb.last().unwrap().finish;
        assert!((fb - fa - 1.0).abs() < 1e-9, "10 requests x 0.1 s overhead");
    }

    #[test]
    fn batch_is_sequential() {
        let mut c = Connection::new(mbps(1.0)).with_request_overhead(0.0);
        let rs = c.fetch_batch(&[125_000, 125_000]);
        assert!((rs[0].finish - 1.0).abs() < 1e-9);
        assert!((rs[1].start - 1.0).abs() < 1e-9);
        assert!((rs[1].finish - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_until_moves_clock_forward_only() {
        let mut c = Connection::new(mbps(1.0));
        c.idle_until(5.0);
        assert_eq!(c.now(), 5.0);
        c.idle_until(2.0);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn fetch_respects_variable_bandwidth() {
        // 1 Mbps then 2 Mbps: 1.5 Mbit needs 1 s + 0.25 s.
        let tr = BandwidthTrace::new(1.0, vec![1e6, 2e6, 2e6]);
        let mut c = Connection::new(tr).with_request_overhead(0.0);
        let r = c.fetch(1_500_000 / 8);
        assert!((r.finish - 1.25).abs() < 1e-9, "finish {}", r.finish);
    }

    #[test]
    fn zero_byte_fetch_costs_only_overhead() {
        let mut c = Connection::new(mbps(1.0)).with_request_overhead(0.05);
        let r = c.fetch(0);
        assert!((r.finish - 0.05).abs() < 1e-9);
        assert_eq!(r.goodput_bps(), 0.0);
    }

    #[test]
    fn determinism_two_connections_agree() {
        let tr = BandwidthTrace::markov_4g(1e6, 120.0, 17);
        let mut a = Connection::new(tr.clone());
        let mut b = Connection::new(tr);
        let sizes = vec![40_000u64, 80_000, 10_000, 120_000];
        assert_eq!(a.fetch_batch(&sizes), b.fetch_batch(&sizes));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_overhead_panics() {
        Connection::new(mbps(1.0)).with_request_overhead(-0.1);
    }
}

#[cfg(test)]
mod connection_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_batch_conserves_bytes_and_orders_time(
            sizes in proptest::collection::vec(0u64..200_000, 1..20),
            mean in 2e5f64..5e6,
            seed in 0u64..50,
        ) {
            let tr = BandwidthTrace::markov_4g(mean, 60.0, seed);
            let mut c = Connection::new(tr);
            let results = c.fetch_batch(&sizes);
            prop_assert_eq!(results.len(), sizes.len());
            // Total bytes conserved.
            let total: u64 = results.iter().map(|r| r.bytes).sum();
            prop_assert_eq!(total, sizes.iter().sum::<u64>());
            prop_assert_eq!(c.total_bytes(), total);
            // Strictly sequential: each fetch starts when the previous one
            // finished, and time never goes backwards.
            for w in results.windows(2) {
                prop_assert!((w[1].start - w[0].finish).abs() < 1e-9);
            }
            for r in &results {
                prop_assert!(r.finish >= r.start);
            }
        }

        #[test]
        fn prop_overhead_monotone_in_batch_time(
            sizes in proptest::collection::vec(1_000u64..50_000, 1..10),
            oh1 in 0.0f64..0.05,
            oh2 in 0.0f64..0.05,
        ) {
            let tr = BandwidthTrace::constant(1e6, 120.0, 1.0);
            let (lo, hi) = if oh1 <= oh2 { (oh1, oh2) } else { (oh2, oh1) };
            let f_lo = Connection::new(tr.clone())
                .with_request_overhead(lo)
                .fetch_batch(&sizes)
                .last()
                .expect("non-empty")
                .finish;
            let f_hi = Connection::new(tr)
                .with_request_overhead(hi)
                .fetch_batch(&sizes)
                .last()
                .expect("non-empty")
                .finish;
            prop_assert!(f_hi >= f_lo - 1e-9);
        }
    }
}
