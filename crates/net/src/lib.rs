//! # pano-net — delivery substrate
//!
//! A compact event-driven model of the client's download path: tiles are
//! fetched as separate HTTP objects over one persistent connection (paper
//! §7, "Client-side streaming"), so each request pays a request overhead
//! (an RTT-scale gap before bytes flow) and then drains the bandwidth
//! trace. The model exposes exactly what the streaming simulator needs —
//! "when does this batch of objects finish if I start now?" — while
//! keeping the trace integration exact.

//!
//! The [`fault`] module layers a deterministic failure surface on top:
//! seeded request loss, mid-transfer resets with partial-byte accounting,
//! wedged transfers, and a retry/backoff/timeout policy. A zero-fault
//! plan degenerates to the plain [`Connection`], byte for byte.

#![forbid(unsafe_code)]

pub mod connection;
pub mod fault;

pub use connection::{Connection, FetchResult};
pub use fault::{
    ConnectionMetrics, Fault, FaultPlan, FaultyConnection, FetchOutcome, PendingFetch, RetryPolicy,
};
