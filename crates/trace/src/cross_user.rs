//! Cross-user viewpoint prediction (an extension from the paper's §10
//! related work: CUB360-style population priors).
//!
//! Linear extrapolation of one user's recent head motion degrades quickly
//! past ~1 s, but *where other users looked* in the same second is a strong
//! prior — 360° content concentrates attention. [`PopularityPrior`]
//! summarises history trajectories into a per-second modal viewpoint plus a
//! concentration score; [`CrossUserPredictor`] blends the linear
//! extrapolation toward the prior, trusting it more when the horizon is
//! long and the population was focused.

use crate::predictor::LinearViewpointPredictor;
use crate::viewpoint::ViewpointTrace;
use pano_geo::Viewpoint;
use serde::{Deserialize, Serialize};

/// Per-second population summary built from history traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularityPrior {
    /// Seconds between entries (1.0 = per chunk).
    pub interval: f64,
    /// For each interval: the population's mean viewpoint (spherical
    /// centroid) and its concentration in `[0, 1]` (1 = everyone at the
    /// same spot, 0 = uniformly scattered).
    pub entries: Vec<(Viewpoint, f64)>,
}

impl PopularityPrior {
    /// Builds the prior from history traces over `duration` seconds.
    ///
    /// Panics if `traces` is empty or `interval` is non-positive.
    pub fn from_traces(traces: &[ViewpointTrace], duration: f64, interval: f64) -> Self {
        assert!(!traces.is_empty(), "need at least one history trace");
        assert!(interval > 0.0, "interval must be positive");
        let n = (duration / interval).ceil() as usize;
        let entries = (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) * interval;
                // Spherical centroid: mean of unit vectors; its norm is the
                // concentration (the "mean resultant length" statistic).
                let mut sum = [0.0f64; 3];
                for trace in traces {
                    let v = trace.viewpoint_at(t).to_unit_vector();
                    sum[0] += v[0];
                    sum[1] += v[1];
                    sum[2] += v[2];
                }
                let k = traces.len() as f64;
                let norm = (sum[0] * sum[0] + sum[1] * sum[1] + sum[2] * sum[2]).sqrt() / k;
                (Viewpoint::from_vector(sum), norm)
            })
            .collect();
        PopularityPrior { interval, entries }
    }

    /// The population's modal viewpoint and concentration at time `t`
    /// (clamped to the covered range).
    pub fn at(&self, t: f64) -> (Viewpoint, f64) {
        if self.entries.is_empty() {
            return (Viewpoint::forward(), 0.0);
        }
        let idx = ((t / self.interval) as usize).min(self.entries.len() - 1);
        self.entries[idx]
    }
}

/// Blends linear per-user extrapolation with the population prior.
#[derive(Debug, Clone)]
pub struct CrossUserPredictor {
    /// The per-user extrapolator.
    pub linear: LinearViewpointPredictor,
    /// Horizon (seconds) at which the prior reaches half of its maximum
    /// influence.
    pub prior_halflife_secs: f64,
}

impl Default for CrossUserPredictor {
    fn default() -> Self {
        CrossUserPredictor {
            linear: LinearViewpointPredictor::default(),
            prior_halflife_secs: 2.0,
        }
    }
}

impl CrossUserPredictor {
    /// How non-linear the user's recent motion is, in `[0, 1]`: the
    /// disagreement between extrapolations fitted on a long and a short
    /// history window. A smooth tracker's windows agree (≈0); an erratic
    /// explorer's do not (→1).
    pub fn instability(&self, trace: &ViewpointTrace, now: f64, horizon: f64) -> f64 {
        let long = self.linear.predict(trace, now, horizon);
        let short = LinearViewpointPredictor { history_secs: 0.4 }.predict(trace, now, horizon);
        (long.great_circle_distance(&short).value() / 30.0).clamp(0.0, 1.0)
    }

    /// Predicts the viewpoint at `now + horizon`, pulling the linear
    /// extrapolation toward the population mode. The pull weight is the
    /// product of (a) how focused the population was (concentration),
    /// (b) how stale the per-user information is (long horizons trust the
    /// prior more), and (c) how unpredictable the user's own motion
    /// currently is — a smooth tracker is left alone.
    pub fn predict(
        &self,
        trace: &ViewpointTrace,
        prior: &PopularityPrior,
        now: f64,
        horizon: f64,
    ) -> Viewpoint {
        let own = self.linear.predict(trace, now, horizon);
        let (mode, concentration) = prior.at(now + horizon);
        let staleness = horizon / (horizon + self.prior_halflife_secs);
        let instability = self.instability(trace, now, horizon);
        let w = (concentration * staleness * instability).clamp(0.0, 1.0);
        own.slerp(&mode, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewpoint::TRACE_INTERVAL_SECS;
    use pano_geo::Degrees;

    fn still_trace(yaw: f64, secs: f64) -> ViewpointTrace {
        let n = (secs / TRACE_INTERVAL_SECS) as usize;
        ViewpointTrace::from_viewpoints(
            TRACE_INTERVAL_SECS,
            vec![Viewpoint::new(Degrees(yaw), Degrees(0.0)); n],
        )
    }

    fn sweep_trace(speed: f64, secs: f64) -> ViewpointTrace {
        let n = (secs / TRACE_INTERVAL_SECS) as usize;
        let vps = (0..n)
            .map(|i| {
                Viewpoint::new(
                    Degrees(i as f64 * speed * TRACE_INTERVAL_SECS),
                    Degrees(0.0),
                )
            })
            .collect();
        ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps)
    }

    #[test]
    fn focused_population_has_high_concentration() {
        let traces = vec![still_trace(30.0, 10.0), still_trace(32.0, 10.0)];
        let prior = PopularityPrior::from_traces(&traces, 10.0, 1.0);
        let (mode, conc) = prior.at(5.0);
        assert!(conc > 0.99, "concentration {conc}");
        assert!((mode.yaw().value() - 31.0).abs() < 1.0, "mode {mode}");
    }

    #[test]
    fn scattered_population_has_low_concentration() {
        let traces = vec![
            still_trace(0.0, 10.0),
            still_trace(90.0, 10.0),
            still_trace(180.0, 10.0),
            still_trace(-90.0, 10.0),
        ];
        let prior = PopularityPrior::from_traces(&traces, 10.0, 1.0);
        let (_, conc) = prior.at(5.0);
        assert!(conc < 0.1, "concentration {conc}");
    }

    /// A trajectory whose direction flips every second — maximally
    /// unpredictable for a linear extrapolator.
    fn zigzag_trace(amp: f64, secs: f64) -> ViewpointTrace {
        let n = (secs / TRACE_INTERVAL_SECS) as usize;
        let vps = (0..n)
            .map(|i| {
                let t = i as f64 * TRACE_INTERVAL_SECS;
                let phase = (t % 2.0) - 1.0; // triangle wave in [-1, 1]
                let yaw = amp * (1.0 - 2.0 * phase.abs());
                Viewpoint::new(Degrees(yaw), Degrees(0.0))
            })
            .collect();
        ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps)
    }

    #[test]
    fn instability_separates_trackers_from_zigzaggers() {
        let p = CrossUserPredictor::default();
        let smooth = sweep_trace(15.0, 20.0);
        let jerky = zigzag_trace(40.0, 20.0);
        // Evaluate where the long history window straddles a zigzag
        // corner (t = 10) but the short one does not.
        let i_smooth = p.instability(&smooth, 10.4, 2.0);
        let i_jerky = p.instability(&jerky, 10.4, 2.0);
        assert!(i_smooth < 0.15, "smooth instability {i_smooth}");
        assert!(i_jerky > 0.3, "jerky instability {i_jerky}");
    }

    #[test]
    fn prior_pulls_unpredictable_users_toward_the_mode() {
        // Everyone looks at yaw 60; our user zigzags unpredictably.
        let history = vec![still_trace(60.0, 20.0); 8];
        let prior = PopularityPrior::from_traces(&history, 20.0, 1.0);
        let user = zigzag_trace(40.0, 20.0);
        let p = CrossUserPredictor::default();

        let now = 10.4;
        let horizon = 3.0;
        let blended = p.predict(&user, &prior, now, horizon);
        let linear = p.linear.predict(&user, now, horizon);
        let mode = Viewpoint::new(Degrees(60.0), Degrees(0.0));
        assert!(
            blended.great_circle_distance(&mode).value()
                < linear.great_circle_distance(&mode).value(),
            "blend should be closer to the mode than pure linear"
        );
    }

    #[test]
    fn smooth_trackers_are_left_alone() {
        // A clean sweep is perfectly linear: the prior must not hijack it
        // even if the population looks elsewhere.
        let history = vec![still_trace(-120.0, 20.0); 8];
        let prior = PopularityPrior::from_traces(&history, 20.0, 1.0);
        let user = sweep_trace(15.0, 20.0);
        let p = CrossUserPredictor::default();
        let blended = p.predict(&user, &prior, 10.0, 2.0);
        let linear = p.linear.predict(&user, 10.0, 2.0);
        assert!(
            blended.great_circle_distance(&linear).value() < 5.0,
            "smooth user pulled {:.1} deg off their own prediction",
            blended.great_circle_distance(&linear).value()
        );
    }

    #[test]
    fn short_horizons_trust_the_user() {
        let history = vec![still_trace(120.0, 20.0); 8];
        let prior = PopularityPrior::from_traces(&history, 20.0, 1.0);
        let user = still_trace(0.0, 20.0);
        let p = CrossUserPredictor::default();
        let short = p.predict(&user, &prior, 5.0, 0.2);
        // 0.2 s horizon: staleness ~0.09, pull is tiny.
        assert!(
            short.great_circle_distance(&Viewpoint::forward()).value() < 15.0,
            "short-horizon prediction {short} strayed too far"
        );
    }

    #[test]
    fn scattered_prior_changes_nothing() {
        let history = vec![
            still_trace(0.0, 20.0),
            still_trace(90.0, 20.0),
            still_trace(180.0, 20.0),
            still_trace(-90.0, 20.0),
        ];
        let prior = PopularityPrior::from_traces(&history, 20.0, 1.0);
        let user = sweep_trace(10.0, 20.0);
        let p = CrossUserPredictor::default();
        let blended = p.predict(&user, &prior, 5.0, 2.0);
        let linear = p.linear.predict(&user, 5.0, 2.0);
        assert!(
            blended.great_circle_distance(&linear).value() < 2.0,
            "low concentration must not move the prediction much"
        );
    }

    #[test]
    #[should_panic(expected = "at least one history trace")]
    fn empty_history_panics() {
        PopularityPrior::from_traces(&[], 10.0, 1.0);
    }

    #[test]
    fn prior_round_trips_serde() {
        let prior = PopularityPrior::from_traces(&[still_trace(10.0, 5.0)], 5.0, 1.0);
        let json = serde_json::to_string(&prior).unwrap();
        let back: PopularityPrior = serde_json::from_str(&json).unwrap();
        // JSON float formatting may shave a ULP off the concentration;
        // compare entries approximately.
        assert_eq!(prior.entries.len(), back.entries.len());
        for (a, b) in prior.entries.iter().zip(&back.entries) {
            assert!(a.0.great_circle_distance(&b.0).value() < 1e-9);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }
}
