//! # pano-trace — viewpoint and bandwidth trace substrate
//!
//! Pano's adaptation is driven by two time series: where the user's head
//! points (sampled at 20 Hz by the HMD) and how much throughput the network
//! offers. The paper used recorded HTC Vive trajectories (18 videos × 48
//! users) and public 4G/LTE throughput logs; we regenerate both
//! synthetically (DESIGN.md §1):
//!
//! * [`viewpoint`] — trajectory traces and the paper's own §8.5 synthesis
//!   recipe: track a random object 70 % of the time, explore a random
//!   region 30 %, with per-user behavioural variation.
//! * [`features`] — mapping a trace onto the quality model's inputs: the
//!   per-cell relative speed, 5-s luminance change, and DoF difference
//!   that form an [`pano_jnd::ActionState`].
//! * [`predictor`] — the client-side estimators: linear-regression
//!   viewpoint prediction (1–3 s ahead) and the conservative
//!   lower-bound speed rule of §6.1 / Fig. 10.
//! * [`noise`] — the Fig. 16 stress-test: random angular shifts of up to
//!   `n` degrees applied to every sample.
//! * [`bandwidth`] — Markov-modulated 4G-like throughput traces (presets
//!   at the paper's 0.71 and 1.05 Mbps averages) and a history-based
//!   throughput predictor with controllable error.
//! * [`cross_user`] — a CUB360-style extension (paper §10): a population
//!   popularity prior blended with the linear extrapolation.

#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod cross_user;
pub mod features;
pub mod import;
pub mod noise;
pub mod predictor;
pub mod viewpoint;

pub use bandwidth::{BandwidthTrace, ThroughputPredictor};
pub use cross_user::{CrossUserPredictor, PopularityPrior};
pub use features::{ActionEstimator, CellActions};
pub use import::{format_viewpoint_log, parse_bandwidth_log, parse_viewpoint_log, ImportError};
pub use noise::add_viewpoint_noise;
pub use predictor::{ConservativeSpeedEstimator, LinearViewpointPredictor};
pub use viewpoint::{TraceGenerator, ViewpointSample, ViewpointTrace};
