//! Bandwidth traces and throughput prediction.
//!
//! The paper replays public 4G/LTE throughput logs with averages of 0.71
//! and 1.05 Mbps. [`BandwidthTrace`] holds a fixed-interval throughput
//! series; the synthetic generator is a two-state Markov-modulated model
//! (good/degraded cell conditions) with lognormal-ish within-state
//! variation, scaled to a target mean — capturing the burstiness that
//! stresses the buffer without the long tails of raw logs.
//! [`ThroughputPredictor`] is the standard harmonic-mean-of-history
//! estimator used by MPC, with an optional fixed bias for the Fig. 16(d)
//! robustness experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fixed-interval throughput series in bits per second.
///
/// ```
/// use pano_trace::BandwidthTrace;
///
/// let lte = BandwidthTrace::lte_low(600.0, 42);
/// assert!((lte.mean_bps() - 0.71e6).abs() < 1.0); // the paper's low trace
/// // Transfer time integrates the varying series exactly.
/// let secs = lte.transfer_time(0.0, 50_000.0);
/// assert!(secs > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    /// Seconds between samples.
    pub interval: f64,
    /// Throughput samples, bps.
    pub samples: Vec<f64>,
}

impl BandwidthTrace {
    /// Builds a trace from raw samples. Panics on a non-positive interval,
    /// empty samples, or negative throughput.
    pub fn new(interval: f64, samples: Vec<f64>) -> Self {
        assert!(interval > 0.0, "interval must be positive");
        assert!(!samples.is_empty(), "trace must have samples");
        assert!(
            samples.iter().all(|&s| s >= 0.0 && s.is_finite()),
            "throughput must be non-negative and finite"
        );
        BandwidthTrace { interval, samples }
    }

    /// A constant-throughput trace (useful in tests).
    pub fn constant(bps: f64, secs: f64, interval: f64) -> Self {
        let n = (secs / interval).ceil().max(1.0) as usize;
        BandwidthTrace::new(interval, vec![bps; n])
    }

    /// The paper's low-bandwidth condition: ~0.71 Mbps average.
    pub fn lte_low(secs: f64, seed: u64) -> Self {
        Self::markov_4g(0.71e6, secs, seed)
    }

    /// The paper's high-bandwidth condition: ~1.05 Mbps average.
    pub fn lte_high(secs: f64, seed: u64) -> Self {
        Self::markov_4g(1.05e6, secs, seed)
    }

    /// Two-state Markov-modulated 4G model scaled to `mean_bps`.
    ///
    /// The chain alternates between a good state (≈1.3× the mean) and a
    /// degraded state (≈0.55× the mean) with ~8 s and ~4 s mean dwell
    /// times; within a state, samples wobble ±25 %. The series is then
    /// rescaled so its mean is exactly `mean_bps`.
    pub fn markov_4g(mean_bps: f64, secs: f64, seed: u64) -> Self {
        assert!(mean_bps > 0.0 && secs > 0.0);
        let interval = 1.0;
        let n = secs.ceil() as usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA11D);
        let mut good = true;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Dwell-time geometric transitions: P(leave good) = 1/8,
            // P(leave degraded) = 1/4 per second.
            let leave_p = if good { 1.0 / 8.0 } else { 1.0 / 4.0 };
            if rng.gen_bool(leave_p) {
                good = !good;
            }
            let base = if good { 1.3 } else { 0.55 };
            let wobble = rng.gen_range(0.75..1.25);
            samples.push(mean_bps * base * wobble);
        }
        // Rescale to hit the target mean exactly.
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        for s in &mut samples {
            *s *= mean_bps / mean;
        }
        BandwidthTrace::new(interval, samples)
    }

    /// Zeroes throughput over `[start_secs, start_secs + duration_secs)`,
    /// modelling a full connectivity outage (tunnel, elevator, handover
    /// blackout). Samples partially covered by the window are zeroed
    /// whole — an outage silences the entire sample it touches. Panics on
    /// negative inputs; a window past the end of the trace is a no-op.
    pub fn with_outage(mut self, start_secs: f64, duration_secs: f64) -> Self {
        assert!(
            start_secs >= 0.0 && duration_secs >= 0.0,
            "outage window must be non-negative"
        );
        let end = start_secs + duration_secs;
        for (i, s) in self.samples.iter_mut().enumerate() {
            let t0 = i as f64 * self.interval;
            let t1 = t0 + self.interval;
            if t1 > start_secs && t0 < end {
                *s = 0.0;
            }
        }
        self
    }

    /// A Markov 4G trace with a set of outage windows punched into it —
    /// the burst-loss condition for robustness sweeps. `outages` is a
    /// slice of `(start_secs, duration_secs)` pairs.
    pub fn markov_4g_with_outages(
        mean_bps: f64,
        secs: f64,
        seed: u64,
        outages: &[(f64, f64)],
    ) -> Self {
        outages.iter().fold(
            Self::markov_4g(mean_bps, secs, seed),
            |tr, &(start, dur)| tr.with_outage(start, dur),
        )
    }

    /// Trace duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.samples.len() as f64 * self.interval
    }

    /// Approximate heap footprint of the sample buffer, bytes — what a
    /// fleet saves per session by sharing the trace instead of cloning
    /// it (reported in `fleet_bench` output).
    pub fn approx_heap_bytes(&self) -> usize {
        self.samples.len() * std::mem::size_of::<f64>()
    }

    /// Mean throughput, bps.
    pub fn mean_bps(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Throughput at time `t` (clamped to the trace; the trace loops if
    /// `t` exceeds its duration, so long sessions can replay short logs).
    pub fn throughput_at(&self, t: f64) -> f64 {
        let idx = ((t / self.interval) as usize) % self.samples.len();
        self.samples[idx]
    }

    /// Bytes deliverable over `[t0, t0 + dt)`, integrating the series.
    pub fn bytes_deliverable(&self, t0: f64, dt: f64) -> f64 {
        if dt <= 0.0 {
            return 0.0;
        }
        let mut bits = 0.0;
        let mut t = t0;
        let end = t0 + dt;
        while t < end {
            let seg_end = ((t / self.interval).floor() + 1.0) * self.interval;
            let step = seg_end.min(end) - t;
            bits += self.throughput_at(t) * step;
            t += step;
        }
        bits / 8.0
    }

    /// Time needed to transfer `bytes` starting at `t0`, seconds.
    ///
    /// Inverts [`BandwidthTrace::bytes_deliverable`] by walking the series.
    /// Returns `f64::INFINITY` if the trace is all-zero from `t0` onward
    /// (no progress possible within one full loop).
    pub fn transfer_time(&self, t0: f64, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let mut remaining_bits = bytes * 8.0;
        let mut t = t0;
        let loop_limit = t0 + 2.0 * self.duration_secs() + 1.0;
        while t < loop_limit {
            let seg_end = ((t / self.interval).floor() + 1.0) * self.interval;
            let step = seg_end - t;
            let rate = self.throughput_at(t);
            let can = rate * step;
            if can >= remaining_bits {
                return t + remaining_bits / rate - t0;
            }
            remaining_bits -= can;
            t = seg_end;
        }
        f64::INFINITY
    }
}

/// Harmonic-mean throughput predictor with optional multiplicative bias.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPredictor {
    /// History window, seconds (MPC convention: the last 5 samples).
    pub history_secs: f64,
    /// Multiplicative error: predicted = actual-estimate × (1 + bias).
    /// Fig. 16(d) uses ±0.1 and ±0.3.
    pub bias: f64,
}

impl Default for ThroughputPredictor {
    fn default() -> Self {
        ThroughputPredictor {
            history_secs: 5.0,
            bias: 0.0,
        }
    }
}

impl ThroughputPredictor {
    /// Predicted throughput for the near future at time `now`, bps:
    /// harmonic mean of the trailing window, scaled by `1 + bias`.
    pub fn predict(&self, trace: &BandwidthTrace, now: f64) -> f64 {
        let mut t = (now - self.history_secs).max(0.0);
        let mut inv_sum = 0.0;
        let mut n = 0.0;
        while t < now {
            let v = trace.throughput_at(t).max(1.0);
            inv_sum += 1.0 / v;
            n += 1.0;
            t += trace.interval;
        }
        let base = if n == 0.0 {
            trace.throughput_at(now)
        } else {
            n / inv_sum
        };
        (base * (1.0 + self.bias)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_trace_basics() {
        let tr = BandwidthTrace::constant(1e6, 10.0, 1.0);
        assert_eq!(tr.samples.len(), 10);
        assert_eq!(tr.mean_bps(), 1e6);
        assert_eq!(tr.throughput_at(3.5), 1e6);
        // 1 Mbps for 2 s = 250 KB.
        assert!((tr.bytes_deliverable(0.0, 2.0) - 250_000.0).abs() < 1.0);
        // Transfer 125 KB at 1 Mbps takes 1 s.
        assert!((tr.transfer_time(0.0, 125_000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_loops_beyond_duration() {
        let tr = BandwidthTrace::new(1.0, vec![1e6, 2e6]);
        assert_eq!(tr.throughput_at(0.5), 1e6);
        assert_eq!(tr.throughput_at(1.5), 2e6);
        assert_eq!(tr.throughput_at(2.5), 1e6); // looped
    }

    #[test]
    fn lte_presets_hit_paper_means() {
        let low = BandwidthTrace::lte_low(600.0, 1);
        let high = BandwidthTrace::lte_high(600.0, 1);
        assert!((low.mean_bps() - 0.71e6).abs() < 1.0);
        assert!((high.mean_bps() - 1.05e6).abs() < 1.0);
        // The model actually varies.
        let min = low.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = low.samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1.5 * min, "trace should be bursty: {min}..{max}");
    }

    #[test]
    fn markov_is_deterministic() {
        assert_eq!(
            BandwidthTrace::markov_4g(1e6, 100.0, 9),
            BandwidthTrace::markov_4g(1e6, 100.0, 9)
        );
        assert_ne!(
            BandwidthTrace::markov_4g(1e6, 100.0, 9),
            BandwidthTrace::markov_4g(1e6, 100.0, 10)
        );
    }

    #[test]
    fn transfer_time_spans_variable_segments() {
        // 1 Mbps then 2 Mbps: 1.5 Mbit takes 1 s + 0.25 s.
        let tr = BandwidthTrace::new(1.0, vec![1e6, 2e6]);
        let t = tr.transfer_time(0.0, 1.5e6 / 8.0);
        assert!((t - 1.25).abs() < 1e-9, "t={t}");
        // Starting mid-segment.
        let t2 = tr.transfer_time(0.5, 0.5e6 / 8.0);
        assert!((t2 - 0.5).abs() < 1e-9, "t2={t2}");
    }

    #[test]
    fn transfer_time_infinite_on_dead_link() {
        let tr = BandwidthTrace::new(1.0, vec![0.0, 0.0]);
        assert!(tr.transfer_time(0.0, 1000.0).is_infinite());
        assert_eq!(tr.transfer_time(0.0, 0.0), 0.0);
    }

    #[test]
    fn outage_zeroes_covered_samples_only() {
        let tr = BandwidthTrace::constant(1e6, 10.0, 1.0).with_outage(3.0, 2.0);
        assert_eq!(tr.throughput_at(2.5), 1e6);
        assert_eq!(tr.throughput_at(3.5), 0.0);
        assert_eq!(tr.throughput_at(4.5), 0.0);
        assert_eq!(tr.throughput_at(5.5), 1e6);
        // A transfer started inside the outage waits for it to end.
        let t = tr.transfer_time(3.0, 125_000.0);
        assert!((t - 3.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn outage_partially_covering_a_sample_silences_it() {
        let tr = BandwidthTrace::constant(1e6, 4.0, 1.0).with_outage(1.5, 1.0);
        // Window [1.5, 2.5) touches samples 1 and 2; both go dark.
        assert_eq!(tr.throughput_at(1.0), 0.0);
        assert_eq!(tr.throughput_at(2.0), 0.0);
        assert_eq!(tr.throughput_at(3.0), 1e6);
    }

    #[test]
    fn outage_past_the_end_is_a_noop() {
        let base = BandwidthTrace::constant(1e6, 5.0, 1.0);
        assert_eq!(base.clone().with_outage(50.0, 10.0), base);
        assert_eq!(base.clone().with_outage(2.0, 0.0), base);
    }

    #[test]
    fn markov_with_outages_matches_manual_punching() {
        let manual = BandwidthTrace::markov_4g(1e6, 60.0, 7)
            .with_outage(5.0, 3.0)
            .with_outage(20.0, 2.0);
        let built =
            BandwidthTrace::markov_4g_with_outages(1e6, 60.0, 7, &[(5.0, 3.0), (20.0, 2.0)]);
        assert_eq!(manual, built);
        assert_eq!(built.throughput_at(6.0), 0.0);
        assert_eq!(built.throughput_at(21.0), 0.0);
        assert!(built.mean_bps() < 1e6, "outages lower the mean");
    }

    #[test]
    #[should_panic(expected = "outage window must be non-negative")]
    fn negative_outage_panics() {
        BandwidthTrace::constant(1e6, 5.0, 1.0).with_outage(-1.0, 2.0);
    }

    #[test]
    fn predictor_recovers_constant_rate() {
        let tr = BandwidthTrace::constant(2e6, 30.0, 1.0);
        let p = ThroughputPredictor::default();
        assert!((p.predict(&tr, 10.0) - 2e6).abs() < 1.0);
    }

    #[test]
    fn harmonic_mean_is_conservative() {
        // Harmonic mean of {1, 4} Mbps is 1.6 Mbps, below the 2.5 mean.
        let tr = BandwidthTrace::new(1.0, vec![1e6, 4e6, 1e6, 4e6, 1e6, 4e6, 1e6, 4e6]);
        let p = ThroughputPredictor::default();
        let pred = p.predict(&tr, 6.0);
        // Window holds {4,1,4,1,4} Mbps: harmonic mean 1.818 Mbps, well
        // below the 2.6 Mbps arithmetic mean of the same window.
        assert!(pred < 2.0e6, "pred {pred}");
        assert!((pred - 1.818e6).abs() < 0.05e6, "pred {pred}");
    }

    #[test]
    fn bias_scales_prediction() {
        let tr = BandwidthTrace::constant(1e6, 30.0, 1.0);
        let over = ThroughputPredictor {
            bias: 0.3,
            ..Default::default()
        };
        let under = ThroughputPredictor {
            bias: -0.3,
            ..Default::default()
        };
        assert!((over.predict(&tr, 10.0) - 1.3e6).abs() < 1.0);
        assert!((under.predict(&tr, 10.0) - 0.7e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "must have samples")]
    fn empty_trace_panics() {
        BandwidthTrace::new(1.0, vec![]);
    }

    proptest! {
        #[test]
        fn prop_deliverable_and_transfer_are_inverse(
            mean in 0.2e6f64..5e6, secs in 10.0f64..60.0, seed in 0u64..50,
            t0 in 0.0f64..20.0, dt in 0.1f64..10.0,
        ) {
            let tr = BandwidthTrace::markov_4g(mean, secs, seed);
            let bytes = tr.bytes_deliverable(t0, dt);
            let t = tr.transfer_time(t0, bytes);
            prop_assert!((t - dt).abs() < 1e-6, "dt={dt} t={t}");
        }

        #[test]
        fn prop_bytes_monotone_in_dt(dt1 in 0.0f64..10.0, dt2 in 0.0f64..10.0) {
            let tr = BandwidthTrace::markov_4g(1e6, 30.0, 3);
            let (lo, hi) = if dt1 <= dt2 { (dt1, dt2) } else { (dt2, dt1) };
            prop_assert!(tr.bytes_deliverable(2.0, lo) <= tr.bytes_deliverable(2.0, hi) + 1e-9);
        }
    }
}
