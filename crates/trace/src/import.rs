//! Importing recorded traces.
//!
//! The paper's datasets ship as plain text: head-movement logs with one
//! `timestamp, yaw, pitch` sample per line (HTC Vive, 20 Hz) and 4G
//! throughput logs with one bits-per-second sample per second. These
//! parsers accept that shape (comma- or whitespace-separated, `#` comments,
//! blank lines) and resample head traces onto the fixed 20 Hz grid the
//! rest of the system expects.

use crate::bandwidth::BandwidthTrace;
use crate::viewpoint::{ViewpointTrace, TRACE_INTERVAL_SECS};
use pano_geo::{Degrees, Viewpoint};
use std::fmt;

/// Why an import failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// A line could not be split into the expected number of fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field could not be parsed as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Timestamps must strictly increase.
    NonMonotonicTime {
        /// 1-based line number.
        line: usize,
    },
    /// The file contained no samples.
    Empty,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::BadFieldCount {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} fields, expected {expected}"),
            ImportError::BadNumber { line, token } => {
                write!(f, "line {line}: '{token}' is not a number")
            }
            ImportError::NonMonotonicTime { line } => {
                write!(f, "line {line}: timestamp does not increase")
            }
            ImportError::Empty => write!(f, "no samples in input"),
        }
    }
}

impl std::error::Error for ImportError {}

fn split_line(line: &str) -> Vec<&str> {
    line.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|t| !t.is_empty())
        .collect()
}

fn parse_f64(token: &str, line: usize) -> Result<f64, ImportError> {
    token.parse().map_err(|_| ImportError::BadNumber {
        line,
        token: token.to_string(),
    })
}

/// Parses a head-movement log (`t_secs yaw_deg pitch_deg` per line) and
/// resamples it onto the 20 Hz grid by nearest-earlier sample.
pub fn parse_viewpoint_log(text: &str) -> Result<ViewpointTrace, ImportError> {
    let mut raw: Vec<(f64, Viewpoint)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_line(line);
        if fields.len() != 3 {
            return Err(ImportError::BadFieldCount {
                line: line_no,
                found: fields.len(),
                expected: 3,
            });
        }
        let t = parse_f64(fields[0], line_no)?;
        let yaw = parse_f64(fields[1], line_no)?;
        let pitch = parse_f64(fields[2], line_no)?;
        if let Some(&(prev_t, _)) = raw.last() {
            if t <= prev_t {
                return Err(ImportError::NonMonotonicTime { line: line_no });
            }
        }
        raw.push((t, Viewpoint::new(Degrees(yaw), Degrees(pitch))));
    }
    // Resample onto the fixed grid, starting at the first timestamp.
    let (t0, t_end) = match (raw.first(), raw.last()) {
        (Some(&(first, _)), Some(&(last, _))) => (first, last),
        _ => return Err(ImportError::Empty),
    };
    let n = ((t_end - t0) / TRACE_INTERVAL_SECS).floor() as usize + 1;
    let mut vps = Vec::with_capacity(n);
    let mut cursor = 0usize;
    for k in 0..n {
        let t = t0 + k as f64 * TRACE_INTERVAL_SECS;
        while cursor + 1 < raw.len() && raw[cursor + 1].0 <= t {
            cursor += 1;
        }
        vps.push(raw[cursor].1);
    }
    Ok(ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps))
}

/// Parses a throughput log: one bits-per-second sample per line (the 4G
/// log format), at a fixed one-second interval.
pub fn parse_bandwidth_log(text: &str) -> Result<BandwidthTrace, ImportError> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_line(line);
        if fields.len() != 1 {
            return Err(ImportError::BadFieldCount {
                line: line_no,
                found: fields.len(),
                expected: 1,
            });
        }
        let bps = parse_f64(fields[0], line_no)?;
        if !(bps.is_finite() && bps >= 0.0) {
            return Err(ImportError::BadNumber {
                line: line_no,
                token: fields[0].to_string(),
            });
        }
        samples.push(bps);
    }
    if samples.is_empty() {
        return Err(ImportError::Empty);
    }
    Ok(BandwidthTrace::new(1.0, samples))
}

/// Serialises a viewpoint trace back to the log format (for round-trips
/// and for publishing generated traces alongside the dataset export).
pub fn format_viewpoint_log(trace: &ViewpointTrace) -> String {
    let mut out = String::with_capacity(trace.samples.len() * 24);
    out.push_str("# t_secs yaw_deg pitch_deg\n");
    for s in &trace.samples {
        out.push_str(&format!(
            "{:.3} {:.3} {:.3}\n",
            s.t,
            s.vp.yaw().value(),
            s.vp.pitch().value()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_head_log() {
        let text = "# comment\n0.0, 10.0, 5.0\n0.05, 11.0, 5.0\n0.10, 12.0, 5.0\n";
        let tr = parse_viewpoint_log(text).expect("parses");
        assert_eq!(tr.samples.len(), 3);
        assert!((tr.viewpoint_at(0.0).yaw().value() - 10.0).abs() < 1e-9);
        assert!((tr.viewpoint_at(0.1).yaw().value() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn resamples_irregular_timestamps() {
        // 2 Hz input resampled to 20 Hz: nearest-earlier fill.
        let text = "0.0 0 0\n0.5 10 0\n1.0 20 0\n";
        let tr = parse_viewpoint_log(text).expect("parses");
        assert_eq!(tr.samples.len(), 21);
        assert_eq!(tr.viewpoint_at(0.25).yaw().value(), 0.0);
        assert_eq!(tr.viewpoint_at(0.55).yaw().value(), 10.0);
        assert_eq!(tr.viewpoint_at(1.0).yaw().value(), 20.0);
    }

    #[test]
    fn rejects_malformed_head_logs() {
        assert_eq!(
            parse_viewpoint_log("0.0 1.0\n"),
            Err(ImportError::BadFieldCount {
                line: 1,
                found: 2,
                expected: 3
            })
        );
        assert_eq!(
            parse_viewpoint_log("0.0 x 1.0\n"),
            Err(ImportError::BadNumber {
                line: 1,
                token: "x".into()
            })
        );
        assert_eq!(
            parse_viewpoint_log("0.1 1 1\n0.1 2 2\n"),
            Err(ImportError::NonMonotonicTime { line: 2 })
        );
        assert_eq!(
            parse_viewpoint_log("# only comments\n"),
            Err(ImportError::Empty)
        );
    }

    #[test]
    fn head_log_round_trips_through_format() {
        let original = crate::viewpoint::TraceGenerator::default().generate(
            &pano_video::scene::Scene::new(
                pano_video::scene::SceneSpec::test_stimulus(10.0, 1.0, 128),
                5.0,
            ),
            7,
        );
        let text = format_viewpoint_log(&original);
        let parsed = parse_viewpoint_log(&text).expect("parses");
        assert_eq!(parsed.samples.len(), original.samples.len());
        for (a, b) in original.samples.iter().zip(&parsed.samples) {
            assert!(
                a.vp.great_circle_distance(&b.vp).value() < 0.01,
                "sample drift at t={}",
                a.t
            );
        }
    }

    #[test]
    fn parses_a_bandwidth_log() {
        let text = "# bps\n1000000\n1200000.5\n\n800000\n";
        let tr = parse_bandwidth_log(text).expect("parses");
        assert_eq!(tr.samples.len(), 3);
        assert_eq!(tr.throughput_at(1.5), 1200000.5);
    }

    #[test]
    fn rejects_malformed_bandwidth_logs() {
        assert_eq!(
            parse_bandwidth_log("1e6 2e6\n"),
            Err(ImportError::BadFieldCount {
                line: 1,
                found: 2,
                expected: 1
            })
        );
        assert_eq!(
            parse_bandwidth_log("-5\n"),
            Err(ImportError::BadNumber {
                line: 1,
                token: "-5".into()
            })
        );
        assert_eq!(parse_bandwidth_log(""), Err(ImportError::Empty));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = ImportError::BadNumber {
            line: 3,
            token: "abc".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("abc"));
    }
}
