//! Client-side viewpoint prediction (paper §6.1, §7).
//!
//! Two estimators, both used by the Pano client:
//!
//! * [`LinearViewpointPredictor`] — the standard linear-regression
//!   extrapolation over the recent history window, predicting the
//!   viewpoint 1–3 s ahead. This is the same predictor the paper gives to
//!   Pano *and* every baseline for a fair comparison.
//! * [`ConservativeSpeedEstimator`] — the §6.1 insight: exact future speed
//!   is unpredictable when the head moves fast, but the *minimum* speed
//!   observed in the last couple of seconds is a reliable lower bound
//!   (Fig. 10), and a lower bound on speed yields a conservative
//!   (never-overestimated) JND multiplier.

use crate::viewpoint::ViewpointTrace;
use pano_geo::{Degrees, Viewpoint};

/// Linear-regression extrapolation of yaw and pitch over a history window.
#[derive(Debug, Clone, Copy)]
pub struct LinearViewpointPredictor {
    /// History window length, seconds (paper uses the recent 1 s).
    pub history_secs: f64,
}

impl Default for LinearViewpointPredictor {
    fn default() -> Self {
        LinearViewpointPredictor { history_secs: 1.0 }
    }
}

impl LinearViewpointPredictor {
    /// Predicts the viewpoint at `now + horizon` from the trace history up
    /// to `now`. Falls back to the last known viewpoint when the history
    /// is too short for a regression.
    pub fn predict(&self, trace: &ViewpointTrace, now: f64, horizon: f64) -> Viewpoint {
        let hist = trace.window((now - self.history_secs).max(0.0), now);
        let last = trace.viewpoint_at(now);
        if hist.len() < 3 {
            return last;
        }
        // Unwrap yaw across the antimeridian so the regression sees a
        // continuous series: accumulate wrapped deltas from the first
        // sample.
        let t0 = hist[0].t;
        let mut ys = Vec::with_capacity(hist.len());
        let mut ps = Vec::with_capacity(hist.len());
        let mut ts = Vec::with_capacity(hist.len());
        let mut yaw_acc = hist[0].vp.yaw().value();
        ys.push(yaw_acc);
        ps.push(hist[0].vp.pitch().value());
        ts.push(0.0);
        for w in hist.windows(2) {
            let d = (w[1].vp.yaw() - w[0].vp.yaw()).wrap_180().value();
            yaw_acc += d;
            ys.push(yaw_acc);
            ps.push(w[1].vp.pitch().value());
            ts.push(w[1].t - t0);
        }
        let t_pred = now + horizon - t0;
        let yaw = regress_at(&ts, &ys, t_pred);
        let pitch = regress_at(&ts, &ps, t_pred);
        Viewpoint::new(Degrees(yaw), Degrees(pitch))
    }

    /// Predicted viewpoint speed over `[now, now + horizon]`, deg/s:
    /// distance between the current and the predicted viewpoint divided by
    /// the horizon.
    pub fn predict_speed(&self, trace: &ViewpointTrace, now: f64, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let from = trace.viewpoint_at(now);
        let to = self.predict(trace, now, horizon);
        from.great_circle_distance(&to).value() / horizon
    }
}

/// Ordinary least-squares value of the fitted line at `t`.
fn regress_at(ts: &[f64], vs: &[f64], t: f64) -> f64 {
    let n = ts.len() as f64;
    let mt = ts.iter().sum::<f64>() / n;
    let mv = vs.iter().sum::<f64>() / n;
    let mut stt = 0.0;
    let mut stv = 0.0;
    for (&ti, &vi) in ts.iter().zip(vs) {
        stt += (ti - mt) * (ti - mt);
        stv += (ti - mt) * (vi - mv);
    }
    if stt < 1e-12 {
        return mv;
    }
    let slope = stv / stt;
    mv + slope * (t - mt)
}

/// The §6.1 conservative estimator: a lower bound on the near-future
/// viewpoint speed from the recent history minimum.
#[derive(Debug, Clone, Copy)]
pub struct ConservativeSpeedEstimator {
    /// History window, seconds (paper: the last two seconds).
    pub history_secs: f64,
    /// Sub-window length over which instantaneous speeds are averaged
    /// before taking the minimum (smooths 20 Hz jitter).
    pub smooth_secs: f64,
}

impl Default for ConservativeSpeedEstimator {
    fn default() -> Self {
        ConservativeSpeedEstimator {
            history_secs: 2.0,
            smooth_secs: 0.25,
        }
    }
}

impl ConservativeSpeedEstimator {
    /// Lower-bound speed estimate at time `now`: the minimum of the
    /// smoothed speeds over the history window. Returns 0 when no history
    /// exists (maximally conservative).
    pub fn estimate(&self, trace: &ViewpointTrace, now: f64) -> f64 {
        let t0 = (now - self.history_secs).max(0.0);
        if now <= t0 {
            return 0.0;
        }
        let mut min_speed = f64::INFINITY;
        let mut t = t0;
        while t < now {
            let t1 = (t + self.smooth_secs).min(now);
            let s = trace.mean_speed(t, t1);
            if s < min_speed {
                min_speed = s;
            }
            t = t1;
        }
        if min_speed.is_finite() {
            min_speed
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewpoint::TRACE_INTERVAL_SECS;

    fn sweep_trace(speed_deg_s: f64, secs: f64) -> ViewpointTrace {
        let n = (secs / TRACE_INTERVAL_SECS) as usize;
        let vps = (0..n)
            .map(|i| {
                Viewpoint::new(
                    Degrees(i as f64 * speed_deg_s * TRACE_INTERVAL_SECS),
                    Degrees(0.0),
                )
            })
            .collect();
        ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps)
    }

    #[test]
    fn linear_predictor_extrapolates_constant_sweep() {
        let tr = sweep_trace(10.0, 10.0);
        let p = LinearViewpointPredictor::default();
        let pred = p.predict(&tr, 5.0, 2.0);
        let truth = tr.viewpoint_at(7.0);
        assert!(
            pred.great_circle_distance(&truth).value() < 1.0,
            "pred {pred} truth {truth}"
        );
        let v = p.predict_speed(&tr, 5.0, 2.0);
        assert!((v - 10.0).abs() < 1.0, "speed {v}");
    }

    #[test]
    fn predictor_handles_antimeridian_sweep() {
        // 20 deg/s sweep crossing +-180 around t = 9 s.
        let tr = sweep_trace(20.0, 12.0);
        let p = LinearViewpointPredictor::default();
        let pred = p.predict(&tr, 9.0, 1.0);
        let truth = tr.viewpoint_at(10.0);
        assert!(
            pred.great_circle_distance(&truth).value() < 2.0,
            "pred {pred} truth {truth}"
        );
    }

    #[test]
    fn static_viewpoint_predicts_static() {
        let tr = ViewpointTrace::from_viewpoints(
            TRACE_INTERVAL_SECS,
            vec![Viewpoint::new(Degrees(30.0), Degrees(10.0)); 100],
        );
        let p = LinearViewpointPredictor::default();
        let pred = p.predict(&tr, 3.0, 3.0);
        assert!(pred.great_circle_distance(&tr.viewpoint_at(3.0)).value() < 1e-6);
        assert_eq!(p.predict_speed(&tr, 3.0, 0.0), 0.0);
    }

    #[test]
    fn short_history_falls_back_to_last_sample() {
        let tr = sweep_trace(10.0, 0.1); // 2 samples
        let p = LinearViewpointPredictor::default();
        let pred = p.predict(&tr, 0.05, 1.0);
        assert_eq!(pred, tr.viewpoint_at(0.05));
    }

    #[test]
    fn conservative_estimate_is_a_lower_bound_on_constant_speed() {
        let tr = sweep_trace(15.0, 10.0);
        let est = ConservativeSpeedEstimator::default();
        let lb = est.estimate(&tr, 5.0);
        assert!(lb <= 15.0 + 1e-6);
        assert!(lb > 13.0, "lower bound {lb} too loose on constant speed");
    }

    #[test]
    fn conservative_estimate_underestimates_accelerating_head() {
        // Speed ramps 0 -> 40 deg/s over 4 s: the lower bound at t=4 must
        // not exceed the minimum over the last 2 s (speed at t=2, i.e. 20).
        let n = (4.0 / TRACE_INTERVAL_SECS) as usize;
        let mut yaw = 0.0;
        let vps: Vec<Viewpoint> = (0..n)
            .map(|i| {
                let t = i as f64 * TRACE_INTERVAL_SECS;
                yaw += 10.0 * t * TRACE_INTERVAL_SECS; // v(t) = 10 t
                Viewpoint::new(Degrees(yaw), Degrees(0.0))
            })
            .collect();
        let tr = ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps);
        let est = ConservativeSpeedEstimator::default();
        let lb = est.estimate(&tr, 4.0);
        let actual_now = tr.speed_at(3.9);
        assert!(lb < actual_now, "lb {lb} vs current speed {actual_now}");
        assert!(lb > 10.0, "lb {lb} should reflect the 2s-ago speed (~20)");
    }

    #[test]
    fn conservative_estimate_zero_without_history() {
        let tr = sweep_trace(10.0, 5.0);
        assert_eq!(
            ConservativeSpeedEstimator::default().estimate(&tr, 0.0),
            0.0
        );
    }

    #[test]
    fn fig10_lower_bound_holds_most_of_the_time() {
        // A jerky trajectory alternating fast and slow phases; the bound
        // should stay below the realised future mean speed nearly always.
        let n = (30.0 / TRACE_INTERVAL_SECS) as usize;
        let mut yaw: f64 = 0.0;
        let vps: Vec<Viewpoint> = (0..n)
            .map(|i| {
                let t = i as f64 * TRACE_INTERVAL_SECS;
                let v = if (t as u64) % 6 < 3 { 30.0 } else { 3.0 };
                yaw += v * TRACE_INTERVAL_SECS;
                Viewpoint::new(Degrees(yaw), Degrees(0.0))
            })
            .collect();
        let tr = ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps);
        let est = ConservativeSpeedEstimator::default();
        let mut violations = 0;
        let mut checks = 0;
        let mut t = 2.0;
        while t < 28.0 {
            let lb = est.estimate(&tr, t);
            let future = tr.mean_speed(t, t + 1.0);
            checks += 1;
            if lb > future + 1.0 {
                violations += 1;
            }
            t += 0.5;
        }
        assert!(
            (violations as f64) < 0.25 * checks as f64,
            "{violations}/{checks} violations"
        );
    }
}
