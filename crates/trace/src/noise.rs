//! Viewpoint-noise injection (the Fig. 16 stress test).
//!
//! To stress-test robustness to viewpoint prediction errors, the paper
//! shifts every sample of a real trajectory by a distance drawn uniformly
//! from `[0, n]` degrees in a uniformly random direction, for noise levels
//! `n` up to 150°.

use crate::viewpoint::ViewpointTrace;
use pano_geo::Degrees;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a copy of `trace` with each sample shifted by a random distance
/// in `[0, noise_deg]` along a random direction, deterministic in `seed`.
pub fn add_viewpoint_noise(trace: &ViewpointTrace, noise_deg: f64, seed: u64) -> ViewpointTrace {
    assert!(noise_deg >= 0.0, "noise level must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0153);
    let samples = trace
        .samples
        .iter()
        .map(|s| {
            let dist = rng.gen_range(0.0..=noise_deg);
            let dir: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let mut out = *s;
            out.vp =
                s.vp.offset(Degrees(dist * dir.cos()), Degrees(dist * dir.sin()));
            out
        })
        .collect();
    ViewpointTrace {
        interval: trace.interval,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewpoint::TRACE_INTERVAL_SECS;
    use pano_geo::Viewpoint;

    fn still_trace() -> ViewpointTrace {
        ViewpointTrace::from_viewpoints(
            TRACE_INTERVAL_SECS,
            vec![Viewpoint::new(Degrees(20.0), Degrees(0.0)); 200],
        )
    }

    #[test]
    fn zero_noise_is_identity() {
        let tr = still_trace();
        assert_eq!(add_viewpoint_noise(&tr, 0.0, 1), tr);
    }

    #[test]
    fn noise_is_bounded() {
        let tr = still_trace();
        for n in [5.0, 40.0, 80.0] {
            let noisy = add_viewpoint_noise(&tr, n, 7);
            for (a, b) in tr.samples.iter().zip(&noisy.samples) {
                let d = a.vp.great_circle_distance(&b.vp).value();
                // Offset is applied per yaw/pitch component, each <= n, so
                // the angular distance is <= n * sqrt(2) (and usually less).
                assert!(d <= n * std::f64::consts::SQRT_2 + 1e-6, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let tr = still_trace();
        assert_eq!(
            add_viewpoint_noise(&tr, 40.0, 3),
            add_viewpoint_noise(&tr, 40.0, 3)
        );
        assert_ne!(
            add_viewpoint_noise(&tr, 40.0, 3),
            add_viewpoint_noise(&tr, 40.0, 4)
        );
    }

    #[test]
    fn larger_noise_moves_samples_more() {
        let tr = still_trace();
        let mean_shift = |n: f64| {
            let noisy = add_viewpoint_noise(&tr, n, 11);
            tr.samples
                .iter()
                .zip(&noisy.samples)
                .map(|(a, b)| a.vp.great_circle_distance(&b.vp).value())
                .sum::<f64>()
                / tr.samples.len() as f64
        };
        assert!(mean_shift(80.0) > 4.0 * mean_shift(5.0));
    }

    #[test]
    fn timestamps_are_preserved() {
        let tr = still_trace();
        let noisy = add_viewpoint_noise(&tr, 40.0, 9);
        for (a, b) in tr.samples.iter().zip(&noisy.samples) {
            assert_eq!(a.t, b.t);
        }
        assert_eq!(tr.interval, noisy.interval);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_panics() {
        add_viewpoint_noise(&still_trace(), -1.0, 0);
    }
}
