//! From trajectories to quality-model inputs.
//!
//! Given a viewpoint trace and a chunk's cell features, [`ActionEstimator`]
//! computes the per-cell [`ActionState`] — the three viewpoint-driven
//! factors the 360JND multipliers consume:
//!
//! * **relative speed** — the angular speed of a cell's content relative
//!   to the moving viewpoint. A tracked object appears static
//!   (relative speed ≈ 0) while the background sweeps past at head speed;
//!   a counter-moving object appears faster than the head itself.
//! * **luminance change** — the largest change of viewport luminance over
//!   the trailing 5-s window (Factor #2's adaptation period).
//! * **DoF difference** — the absolute dioptre gap between the cell and
//!   the viewpoint-focused content, under the paper's assumption that the
//!   object nearest the viewpoint is the one being watched.
//!
//! The same estimator also computes the Fig. 3 trace statistics (speed /
//! luminance-change / DoF-difference distributions).

use crate::viewpoint::ViewpointTrace;
use pano_geo::{Equirect, GridDims};
use pano_jnd::ActionState;
use pano_video::{ChunkFeatures, Scene};
use serde::{Deserialize, Serialize};

/// Window over which luminance adaptation operates (paper: ~5 s).
pub const LUMINANCE_WINDOW_SECS: f64 = 5.0;

/// Per-cell action states for one chunk, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellActions {
    /// Grid the actions are computed on.
    pub dims: GridDims,
    /// One action state per cell.
    pub actions: Vec<ActionState>,
}

impl CellActions {
    /// Uniform actions across the grid.
    pub fn uniform(dims: GridDims, action: ActionState) -> Self {
        CellActions {
            dims,
            actions: vec![action; dims.cell_count()],
        }
    }

    /// The action for one cell.
    pub fn cell(&self, cell: pano_geo::CellIdx) -> &ActionState {
        &self.actions[self.dims.linear(cell)]
    }
}

/// Computes action states and trace statistics.
#[derive(Debug, Clone)]
pub struct ActionEstimator {
    eq: Equirect,
}

impl ActionEstimator {
    /// Creates an estimator over the given projection.
    pub fn new(eq: Equirect) -> Self {
        ActionEstimator { eq }
    }

    /// Viewport luminance at time `t`: the scene sampled at the viewpoint.
    pub fn viewport_luminance(&self, scene: &Scene, trace: &ViewpointTrace, t: f64) -> f64 {
        let vp = trace.viewpoint_at(t);
        scene.sample(&vp, t).luma
    }

    /// Largest viewport-luminance change within the trailing 5-s window at
    /// time `t` (sampled every 0.5 s).
    pub fn luminance_change(&self, scene: &Scene, trace: &ViewpointTrace, t: f64) -> f64 {
        let now = self.viewport_luminance(scene, trace, t);
        let mut max_change: f64 = 0.0;
        let mut tau = 0.5;
        while tau <= LUMINANCE_WINDOW_SECS {
            let past_t = t - tau;
            if past_t < 0.0 {
                break;
            }
            let past = self.viewport_luminance(scene, trace, past_t);
            max_change = max_change.max((now - past).abs());
            tau += 0.5;
        }
        max_change
    }

    /// DoF of the viewpoint-focused content at `t` (the object nearest the
    /// viewpoint, per the paper's focus assumption; background otherwise).
    pub fn focused_dof(&self, scene: &Scene, trace: &ViewpointTrace, t: f64) -> f64 {
        let vp = trace.viewpoint_at(t);
        scene.sample(&vp, t).dof_dioptre
    }

    /// Conservative lower bound on the trailing luminance change (§6.1):
    /// the minimum of [`ActionEstimator::luminance_change`] over the last
    /// `history_secs`, sampled every 0.5 s. A lower bound on the factor is
    /// a lower bound on its JND multiplier, so adaptation decisions made
    /// from it can only be too careful, never too bold.
    pub fn luminance_change_lower_bound(
        &self,
        scene: &Scene,
        trace: &ViewpointTrace,
        t: f64,
        history_secs: f64,
    ) -> f64 {
        let mut min_change = f64::INFINITY;
        let mut tau = 0.0;
        while tau <= history_secs {
            let tt = t - tau;
            if tt < 0.0 {
                break;
            }
            min_change = min_change.min(self.luminance_change(scene, trace, tt));
            tau += 0.5;
        }
        if min_change.is_finite() {
            min_change
        } else {
            0.0
        }
    }

    /// Conservative lower bound on a region's DoF difference (§6.1): the
    /// minimum of `|region_dof − focused_dof(t')|` over the recent
    /// history. If the user's focus has recently flipped between depths
    /// (object ↔ scenery), the bound collapses toward zero — maximal
    /// caution about the DoF masking channel.
    pub fn dof_diff_lower_bound(
        &self,
        scene: &Scene,
        trace: &ViewpointTrace,
        region_dof: f64,
        t: f64,
        history_secs: f64,
    ) -> f64 {
        let mut min_diff = f64::INFINITY;
        let mut tau = 0.0;
        while tau <= history_secs {
            let tt = t - tau;
            if tt < 0.0 {
                break;
            }
            min_diff = min_diff.min((region_dof - self.focused_dof(scene, trace, tt)).abs());
            tau += 0.5;
        }
        if min_diff.is_finite() {
            min_diff
        } else {
            0.0
        }
    }

    /// Relative speed between the viewpoint and a cell's content over the
    /// chunk window `[t0, t1)`.
    ///
    /// Velocities are compared as vectors in the local tangent frame
    /// (yaw-rate scaled by `cos(pitch)`, pitch-rate), so a viewpoint
    /// tracking an object yields a near-zero relative speed while the
    /// background sweeps at head speed.
    pub fn relative_speed(
        &self,
        trace: &ViewpointTrace,
        t0: f64,
        t1: f64,
        cell_velocity: (f64, f64),
    ) -> f64 {
        let w = trace.window(t0, t1);
        if w.len() < 2 {
            // No motion information: content speed relative to a still head.
            let (vx, vy) = cell_velocity;
            return (vx * vx + vy * vy).sqrt();
        }
        let dt = (w.len() - 1) as f64 * trace.interval;
        let first = w[0].vp;
        let last = w[w.len() - 1].vp;
        let dyaw = (last.yaw() - first.yaw()).wrap_180().value();
        let dpitch = (last.pitch() - first.pitch()).value();
        let mid_pitch_cos = ((first.pitch() + last.pitch()) / 2.0).cos().max(0.05);
        let vp_vx = dyaw * mid_pitch_cos / dt;
        let vp_vy = dpitch / dt;
        let (cx, cy) = cell_velocity;
        let rx = cx - vp_vx;
        let ry = cy - vp_vy;
        (rx * rx + ry * ry).sqrt()
    }

    /// Tangent-frame velocity (deg/s) of the content in a cell over the
    /// chunk, from the scene's object oracle: the covering object's
    /// velocity, or zero for background.
    pub fn cell_content_velocity(
        &self,
        scene: &Scene,
        dims: GridDims,
        cell: pano_geo::CellIdx,
        t_mid: f64,
    ) -> (f64, f64) {
        let center = self.eq.cell_center(dims, cell);
        match scene.object_at(&center, t_mid) {
            Some(obj) => {
                let dt = 0.2;
                let a = obj.position(t_mid - dt / 2.0);
                let b = obj.position(t_mid + dt / 2.0);
                let dyaw = (b.yaw() - a.yaw()).wrap_180().value();
                let dpitch = (b.pitch() - a.pitch()).value();
                let cosr = ((a.pitch() + b.pitch()) / 2.0).cos().max(0.05);
                (dyaw * cosr / dt, dpitch / dt)
            }
            None => (0.0, 0.0),
        }
    }

    /// Full per-cell action states for a chunk: relative speed per cell,
    /// the shared trailing luminance change, and per-cell DoF difference
    /// to the focused content.
    pub fn chunk_actions(
        &self,
        scene: &Scene,
        trace: &ViewpointTrace,
        features: &ChunkFeatures,
        chunk_start: f64,
    ) -> CellActions {
        let dims = features.dims;
        let t1 = chunk_start + features.duration_secs;
        let t_mid = chunk_start + features.duration_secs / 2.0;
        let lum_change = self.luminance_change(scene, trace, chunk_start);
        let focus_dof = self.focused_dof(scene, trace, chunk_start);
        let actions = dims
            .cells()
            .map(|cell| {
                let vel = self.cell_content_velocity(scene, dims, cell, t_mid);
                ActionState {
                    rel_speed_deg_s: self.relative_speed(trace, chunk_start, t1, vel),
                    lum_change,
                    dof_diff: (features.cell(cell).dof_dioptre - focus_dof).abs(),
                }
            })
            .collect();
        CellActions { dims, actions }
    }

    /// Trace statistics for Fig. 3: instantaneous viewpoint speeds, the
    /// 5-s luminance-change series (sampled at `step` s), and the per-cell
    /// DoF differences within the viewport at each sampled time.
    pub fn fig3_statistics(
        &self,
        scene: &Scene,
        trace: &ViewpointTrace,
        step: f64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let speeds = trace.speeds();
        let mut lum_changes = Vec::new();
        let mut dof_diffs = Vec::new();
        let mut t = LUMINANCE_WINDOW_SECS;
        let dims = GridDims::PANO_UNIT;
        while t < trace.duration_secs() {
            lum_changes.push(self.luminance_change(scene, trace, t));
            // Max DoF difference between regions inside the viewport.
            let vp = pano_geo::Viewport::hmd(trace.viewpoint_at(t));
            let mut lo = f64::INFINITY;
            let mut hi: f64 = 0.0;
            for cell in vp.covered_cells(&self.eq, dims) {
                let d = scene
                    .sample(&self.eq.cell_center(dims, cell), t)
                    .dof_dioptre;
                lo = lo.min(d);
                hi = hi.max(d);
            }
            if lo.is_finite() {
                dof_diffs.push(hi - lo);
            }
            t += step;
        }
        (speeds, lum_changes, dof_diffs)
    }
}

/// The fraction of samples in `values` strictly above `threshold` — the
/// §2.3 "how often does the factor exceed its 1.5× threshold" statistic.
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewpoint::{TraceGenerator, ViewpointTrace, TRACE_INTERVAL_SECS};
    use pano_geo::{CellIdx, Degrees, Viewpoint};
    use pano_video::scene::{LuminanceEvent, Scene, SceneSpec};
    use pano_video::FeatureExtractor;

    fn still_trace_at(yaw: f64, secs: f64) -> ViewpointTrace {
        let n = (secs / TRACE_INTERVAL_SECS) as usize;
        ViewpointTrace::from_viewpoints(
            TRACE_INTERVAL_SECS,
            vec![Viewpoint::new(Degrees(yaw), Degrees(0.0)); n],
        )
    }

    fn sweep_trace(speed: f64, secs: f64) -> ViewpointTrace {
        let n = (secs / TRACE_INTERVAL_SECS) as usize;
        let vps = (0..n)
            .map(|i| {
                Viewpoint::new(
                    Degrees(i as f64 * speed * TRACE_INTERVAL_SECS),
                    Degrees(0.0),
                )
            })
            .collect();
        ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps)
    }

    #[test]
    fn still_viewpoint_background_is_static() {
        let est = ActionEstimator::new(Equirect::PAPER_FULL);
        let tr = still_trace_at(0.0, 10.0);
        let rel = est.relative_speed(&tr, 1.0, 2.0, (0.0, 0.0));
        assert!(rel < 0.1, "rel {rel}");
    }

    #[test]
    fn sweeping_viewpoint_makes_background_fast() {
        let est = ActionEstimator::new(Equirect::PAPER_FULL);
        let tr = sweep_trace(20.0, 10.0);
        let rel = est.relative_speed(&tr, 1.0, 2.0, (0.0, 0.0));
        assert!((rel - 20.0).abs() < 1.0, "rel {rel}");
    }

    #[test]
    fn tracking_the_object_zeroes_relative_speed() {
        // Viewpoint sweeps at the object's own velocity.
        let est = ActionEstimator::new(Equirect::PAPER_FULL);
        let tr = sweep_trace(15.0, 10.0);
        let rel = est.relative_speed(&tr, 1.0, 2.0, (15.0, 0.0));
        assert!(rel < 1.0, "rel {rel}");
        // A counter-moving object appears even faster.
        let counter = est.relative_speed(&tr, 1.0, 2.0, (-15.0, 0.0));
        assert!((counter - 30.0).abs() < 1.5, "counter {counter}");
    }

    #[test]
    fn luminance_change_sees_scene_events() {
        let mut spec = SceneSpec::test_stimulus(0.0, 0.0, 60);
        spec.events.push(LuminanceEvent {
            start: 6.0,
            ramp_secs: 0.0,
            from_level: 0.0,
            to_level: 150.0,
            yaw_range: None,
        });
        let scene = Scene::new(spec, 20.0);
        let est = ActionEstimator::new(Equirect::PAPER_FULL);
        let tr = still_trace_at(90.0, 20.0);
        // Before the event: no change.
        assert_eq!(est.luminance_change(&scene, &tr, 5.0), 0.0);
        // Just after: the 5-s window straddles the step.
        let after = est.luminance_change(&scene, &tr, 7.0);
        assert!((after - 150.0).abs() < 1.0, "after {after}");
        // Long after: the window is entirely bright again.
        let late = est.luminance_change(&scene, &tr, 15.0);
        assert_eq!(late, 0.0);
    }

    #[test]
    fn dof_difference_against_focused_object() {
        // Object at origin with DoF 1.5; background 0. Viewpoint on the
        // object: background cells have dof_diff 1.5.
        let mut spec = SceneSpec::test_stimulus(0.0, 1.5, 128);
        spec.objects[0].size_deg = 30.0;
        let scene = Scene::new(spec, 10.0);
        let est = ActionEstimator::new(Equirect::PAPER_FULL);
        let tr = still_trace_at(0.0, 10.0);
        let extractor = FeatureExtractor::new(Equirect::PAPER_FULL, GridDims::PANO_UNIT);
        let feats = extractor.extract(&scene, 30, 0, 1.0);
        let actions = est.chunk_actions(&scene, &tr, &feats, 0.0);
        // A background cell far from the object.
        let bg = Equirect::PAPER_FULL.sphere_to_cell(
            GridDims::PANO_UNIT,
            &Viewpoint::new(Degrees(120.0), Degrees(0.0)),
        );
        let a = actions.cell(bg);
        assert!((a.dof_diff - 1.5).abs() < 0.1, "dof diff {}", a.dof_diff);
        // The focused cell itself has a small difference (its feature DoF
        // is diluted by background corner samples at cell granularity).
        let fg = Equirect::PAPER_FULL.sphere_to_cell(GridDims::PANO_UNIT, &Viewpoint::forward());
        assert!(actions.cell(fg).dof_diff < 0.6);
    }

    #[test]
    fn chunk_actions_cover_grid() {
        let scene = Scene::new(SceneSpec::test_stimulus(10.0, 1.0, 128), 10.0);
        let est = ActionEstimator::new(Equirect::PAPER_FULL);
        let tr = TraceGenerator::default().generate(&scene, 3);
        let feats = FeatureExtractor::new(Equirect::PAPER_FULL, GridDims::PANO_UNIT)
            .extract(&scene, 30, 2, 1.0);
        let actions = est.chunk_actions(&scene, &tr, &feats, 2.0);
        assert_eq!(actions.actions.len(), GridDims::PANO_UNIT.cell_count());
        for a in &actions.actions {
            assert!(a.rel_speed_deg_s >= 0.0 && a.rel_speed_deg_s.is_finite());
            assert!(a.lum_change >= 0.0);
            assert!(a.dof_diff >= 0.0);
        }
    }

    #[test]
    fn fig3_statistics_shapes() {
        let scene = Scene::new(SceneSpec::test_stimulus(15.0, 1.2, 128), 15.0);
        let est = ActionEstimator::new(Equirect::PAPER_FULL);
        let tr = TraceGenerator::default().generate(&scene, 5);
        let (speeds, lums, dofs) = est.fig3_statistics(&scene, &tr, 1.0);
        assert!(!speeds.is_empty());
        assert!(!lums.is_empty());
        assert!(!dofs.is_empty());
        assert!(speeds.iter().all(|s| *s >= 0.0 && s.is_finite()));
        assert!(dofs.iter().all(|d| *d >= 0.0));
    }

    #[test]
    fn fraction_above_basics() {
        assert_eq!(fraction_above(&[], 1.0), 0.0);
        assert_eq!(fraction_above(&[0.5, 1.5, 2.5, 0.1], 1.0), 0.5);
        assert_eq!(fraction_above(&[2.0, 3.0], 1.0), 1.0);
    }

    #[test]
    fn uniform_cell_actions() {
        let a = ActionState {
            rel_speed_deg_s: 3.0,
            lum_change: 10.0,
            dof_diff: 0.2,
        };
        let ca = CellActions::uniform(GridDims::PANO_UNIT, a);
        assert_eq!(ca.actions.len(), 288);
        assert_eq!(*ca.cell(CellIdx::new(5, 5)), a);
    }
}
