//! Viewpoint trajectory traces.
//!
//! A [`ViewpointTrace`] is a fixed-rate sequence of head directions — the
//! paper's traces refresh every 0.05 s (20 Hz), matching mainstream VR
//! devices. [`TraceGenerator`] synthesises trajectories with the recipe the
//! paper itself uses for its extended dataset (§8.5): the viewpoint tracks
//! a randomly picked object ~70 % of the time and dwells on a random
//! region for the remaining ~30 %, with smooth transitions and per-user
//! variation in lag, jitter and dwell times.

use pano_geo::{AngularVelocity, Degrees, Viewpoint};
use pano_video::scene::Scene;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One timestamped head-direction sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewpointSample {
    /// Sample time, seconds from video start.
    pub t: f64,
    /// Head direction.
    pub vp: Viewpoint,
}

/// A fixed-rate viewpoint trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewpointTrace {
    /// Seconds between samples (paper: 0.05).
    pub interval: f64,
    /// The samples, starting at t = 0.
    pub samples: Vec<ViewpointSample>,
}

/// The paper's trace sampling interval: 0.05 s (20 Hz).
pub const TRACE_INTERVAL_SECS: f64 = 0.05;

impl ViewpointTrace {
    /// Builds a trace from raw viewpoints at a fixed interval.
    pub fn from_viewpoints(interval: f64, vps: Vec<Viewpoint>) -> Self {
        assert!(interval > 0.0, "interval must be positive");
        let samples = vps
            .into_iter()
            .enumerate()
            .map(|(i, vp)| ViewpointSample {
                t: i as f64 * interval,
                vp,
            })
            .collect();
        ViewpointTrace { interval, samples }
    }

    /// Trace duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.samples.len() as f64 * self.interval
    }

    /// The sample index covering time `t` (clamped to the trace).
    fn index_at(&self, t: f64) -> usize {
        if self.samples.is_empty() {
            return 0;
        }
        ((t / self.interval) as usize).min(self.samples.len() - 1)
    }

    /// Viewpoint at time `t` (nearest earlier sample, clamped).
    pub fn viewpoint_at(&self, t: f64) -> Viewpoint {
        if self.samples.is_empty() {
            return Viewpoint::forward();
        }
        self.samples[self.index_at(t.max(0.0))].vp
    }

    /// Instantaneous viewpoint speed at time `t`, deg/s, from the
    /// surrounding sample pair.
    pub fn speed_at(&self, t: f64) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let i = self.index_at(t.max(0.0)).min(self.samples.len() - 2);
        AngularVelocity::between(&self.samples[i].vp, &self.samples[i + 1].vp, self.interval)
            .deg_per_sec()
    }

    /// All instantaneous speeds (one per consecutive sample pair), deg/s.
    pub fn speeds(&self) -> Vec<f64> {
        self.samples
            .windows(2)
            .map(|w| AngularVelocity::between(&w[0].vp, &w[1].vp, self.interval).deg_per_sec())
            .collect()
    }

    /// Samples within `[t0, t1)`.
    pub fn window(&self, t0: f64, t1: f64) -> &[ViewpointSample] {
        if self.samples.is_empty() || t1 <= t0 {
            return &[];
        }
        let i0 = self.index_at(t0.max(0.0));
        let i1 = ((t1 / self.interval).ceil() as usize).min(self.samples.len());
        &self.samples[i0..i1.max(i0)]
    }

    /// Mean viewpoint speed over `[t0, t1)`, deg/s.
    pub fn mean_speed(&self, t0: f64, t1: f64) -> f64 {
        let w = self.window(t0, t1);
        if w.len() < 2 {
            return self.speed_at(t0);
        }
        let dist: f64 = w
            .windows(2)
            .map(|p| p[0].vp.great_circle_distance(&p[1].vp).value())
            .sum();
        dist / ((w.len() - 1) as f64 * self.interval)
    }
}

/// What the synthesised user is currently doing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Behaviour {
    /// Following object `id` (with tracking lag).
    Tracking(u32),
    /// Dwelling on a fixed region.
    Exploring(Viewpoint),
}

/// Synthesises viewpoint traces from a scene (the paper's §8.5 recipe).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    /// Fraction of time spent tracking objects (paper: 0.7).
    pub track_fraction: f64,
    /// Mean dwell time per behaviour episode, seconds.
    pub mean_dwell_secs: f64,
    /// Head-movement smoothing: fraction of the remaining error closed per
    /// second (higher = snappier tracking).
    pub responsiveness: f64,
    /// Std-dev of per-sample angular jitter, degrees.
    pub jitter_deg: f64,
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator {
            track_fraction: 0.7,
            mean_dwell_secs: 6.0,
            responsiveness: 2.5,
            jitter_deg: 0.15,
        }
    }
}

impl TraceGenerator {
    /// Generates one user's trace over the scene, deterministic in
    /// `(scene, user_seed)`.
    pub fn generate(&self, scene: &Scene, user_seed: u64) -> ViewpointTrace {
        let mut rng = StdRng::seed_from_u64(user_seed ^ 0xC0FFEE);
        let n = (scene.duration_secs() / TRACE_INTERVAL_SECS).round() as usize;
        let objects = &scene.spec().objects;

        // Per-user behavioural variation. Exact 0 and 1 are preserved so
        // pure-explorer / pure-tracker configurations stay pure.
        let track_fraction = if self.track_fraction <= 0.0 || self.track_fraction >= 1.0 {
            self.track_fraction.clamp(0.0, 1.0)
        } else {
            (self.track_fraction + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0)
        };
        let responsiveness = self.responsiveness * rng.gen_range(0.7..1.4);
        let mean_dwell = self.mean_dwell_secs * rng.gen_range(0.7..1.5);

        let mut current = Viewpoint::forward();
        let mut behaviour = self.pick_behaviour(&mut rng, objects, track_fraction, &current);
        let mut episode_left = rng.gen_range(0.5..2.0 * mean_dwell);
        if let Behaviour::Tracking(id) = behaviour {
            current = objects
                .iter()
                .find(|o| o.id == id)
                .map(|o| o.position(0.0))
                .unwrap_or_else(Viewpoint::forward);
        } else if let Behaviour::Exploring(vp) = behaviour {
            current = vp;
        }

        let mut vps = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * TRACE_INTERVAL_SECS;
            episode_left -= TRACE_INTERVAL_SECS;
            if episode_left <= 0.0 {
                behaviour = self.pick_behaviour(&mut rng, objects, track_fraction, &current);
                episode_left = rng.gen_range(0.5..2.0 * mean_dwell);
            }
            let target = match behaviour {
                Behaviour::Tracking(id) => objects
                    .iter()
                    .find(|o| o.id == id)
                    .map(|o| o.position(t))
                    .unwrap_or(current),
                Behaviour::Exploring(vp) => vp,
            };
            // First-order lag toward the target.
            let alpha = (responsiveness * TRACE_INTERVAL_SECS).min(1.0);
            current = current.slerp(&target, alpha);
            // Small per-sample jitter.
            if self.jitter_deg > 0.0 {
                current = current.offset(
                    Degrees(rng.gen_range(-self.jitter_deg..=self.jitter_deg)),
                    Degrees(rng.gen_range(-self.jitter_deg..=self.jitter_deg)),
                );
            }
            vps.push(current);
        }
        ViewpointTrace::from_viewpoints(TRACE_INTERVAL_SECS, vps)
    }

    /// Generates the whole user population for a scene (paper: 48 users).
    pub fn generate_population(
        &self,
        scene: &Scene,
        n_users: usize,
        seed: u64,
    ) -> Vec<ViewpointTrace> {
        (0..n_users)
            .map(|u| {
                self.generate(
                    scene,
                    seed.wrapping_add((u as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                )
            })
            .collect()
    }

    fn pick_behaviour(
        &self,
        rng: &mut StdRng,
        objects: &[pano_video::scene::ObjectSpec],
        track_fraction: f64,
        current: &Viewpoint,
    ) -> Behaviour {
        if !objects.is_empty() && rng.gen_bool(track_fraction) {
            let idx = rng.gen_range(0..objects.len());
            Behaviour::Tracking(objects[idx].id)
        } else {
            // Explore *locally*: head-movement studies show users scan
            // regions near their current orientation rather than snapping
            // to arbitrary sphere points.
            Behaviour::Exploring(current.offset(
                Degrees(rng.gen_range(-60.0..60.0)),
                Degrees(rng.gen_range(-25.0..25.0)),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pano_video::scene::SceneSpec;

    fn test_scene(speed: f64) -> Scene {
        Scene::new(SceneSpec::test_stimulus(speed, 1.0, 128), 30.0)
    }

    #[test]
    fn trace_basics() {
        let vps = vec![Viewpoint::forward(); 100];
        let tr = ViewpointTrace::from_viewpoints(0.05, vps);
        assert!((tr.duration_secs() - 5.0).abs() < 1e-9);
        assert_eq!(tr.viewpoint_at(2.0), Viewpoint::forward());
        assert_eq!(tr.speed_at(1.0), 0.0);
        assert_eq!(tr.window(1.0, 2.0).len(), 20);
        // Clamping beyond the end.
        assert_eq!(tr.viewpoint_at(99.0), Viewpoint::forward());
        assert_eq!(tr.window(4.9, 4.9).len(), 0);
    }

    #[test]
    fn speeds_reflect_motion() {
        // Viewpoint sweeping at 10 deg/s in yaw.
        let vps: Vec<Viewpoint> = (0..200)
            .map(|i| Viewpoint::new(Degrees(i as f64 * 0.5), Degrees(0.0)))
            .collect();
        let tr = ViewpointTrace::from_viewpoints(0.05, vps);
        for s in tr.speeds() {
            assert!((s - 10.0).abs() < 1e-6);
        }
        assert!((tr.mean_speed(0.0, 5.0) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn generator_is_deterministic() {
        let scene = test_scene(10.0);
        let g = TraceGenerator::default();
        assert_eq!(g.generate(&scene, 5), g.generate(&scene, 5));
        assert_ne!(g.generate(&scene, 5), g.generate(&scene, 6));
    }

    #[test]
    fn trace_has_right_rate_and_duration() {
        let scene = test_scene(5.0);
        let tr = TraceGenerator::default().generate(&scene, 1);
        assert_eq!(tr.interval, TRACE_INTERVAL_SECS);
        assert_eq!(tr.samples.len(), 600); // 30 s at 20 Hz
    }

    #[test]
    fn tracking_users_follow_the_object() {
        // Single-object scene: trackers spend most time near the object.
        let scene = test_scene(8.0);
        let g = TraceGenerator {
            track_fraction: 1.0,
            mean_dwell_secs: 100.0, // never switch episodes
            ..TraceGenerator::default()
        };
        let tr = g.generate(&scene, 3);
        let obj = &scene.spec().objects[0];
        // After the initial catch-up, viewpoint stays within a few degrees.
        let mut near = 0;
        let mut total = 0;
        for s in &tr.samples {
            if s.t < 2.0 {
                continue;
            }
            total += 1;
            if s.vp.great_circle_distance(&obj.position(s.t)).value() < 10.0 {
                near += 1;
            }
        }
        assert!(
            near as f64 / total as f64 > 0.9,
            "tracker near object {near}/{total}"
        );
    }

    #[test]
    fn explorers_stay_still() {
        let scene = test_scene(20.0);
        let g = TraceGenerator {
            track_fraction: 0.0,
            mean_dwell_secs: 100.0,
            jitter_deg: 0.0,
            ..TraceGenerator::default()
        };
        let tr = g.generate(&scene, 9);
        // After converging on the dwell point, speed is ~0.
        let late = tr.mean_speed(10.0, 30.0);
        assert!(late < 1.0, "explorer speed {late}");
    }

    #[test]
    fn population_has_distinct_users() {
        let scene = test_scene(10.0);
        let traces = TraceGenerator::default().generate_population(&scene, 48, 7);
        assert_eq!(traces.len(), 48);
        assert_ne!(traces[0], traces[1]);
        assert_ne!(traces[10], traces[40]);
    }

    #[test]
    fn mixed_behaviour_produces_speed_spread() {
        // With tracking and exploring mixed, the speed distribution covers
        // both near-zero and fast regimes — the Fig. 3 shape.
        let scene = test_scene(25.0);
        let traces = TraceGenerator::default().generate_population(&scene, 16, 42);
        let mut all: Vec<f64> = traces.iter().flat_map(|t| t.speeds()).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = all[all.len() / 10];
        let p90 = all[all.len() * 9 / 10];
        assert!(p10 < 5.0, "slow tail p10 {p10}");
        assert!(p90 > 8.0, "fast tail p90 {p90}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        ViewpointTrace::from_viewpoints(0.0, vec![]);
    }
}
