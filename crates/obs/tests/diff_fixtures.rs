//! Fixture-pair diff test: two hand-authored telemetry runs with known
//! deltas must produce exactly the expected attribution, and a run
//! diffed against itself must be clean — the identical-seed CI gate.

use pano_obs::{diff, load_run, MetricClass, Thresholds};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn fixture_pair_attributes_the_known_deltas() {
    let a = load_run(&fixture("run_a.jsonl")).expect("run_a loads");
    let b = load_run(&fixture("run_b.jsonl")).expect("run_b loads");
    let findings = diff(&a.metrics, &b.metrics, Thresholds::default());

    let get = |name: &str| {
        findings
            .iter()
            .find(|f| f.metric == name)
            .unwrap_or_else(|| panic!("finding for {name} missing: {findings:?}"))
    };

    // The fetch funnel moved 20 requests from hits to misses: exact
    // drift, flagged regardless of magnitude.
    let hits = get("counter.sim.fetch.store_hits");
    assert!(hits.flagged && hits.class == MetricClass::Exact);
    assert_eq!(
        (hits.a, hits.b, hits.delta),
        (Some(100.0), Some(80.0), -20.0)
    );
    let misses = get("counter.sim.fetch.store_misses");
    assert!(misses.flagged);
    assert_eq!(misses.delta, 20.0);

    // Run B played one more chunk and ran two more sessions.
    let chunks = get("events.chunk");
    assert!(chunks.flagged && chunks.delta == 1.0);
    let sessions = get("span.session.count");
    assert!(sessions.flagged && sessions.class == MetricClass::Exact);
    assert_eq!(sessions.delta, 2.0);

    // Session time ballooned 2.0s -> 9.0s: past both timing gates.
    let sum = get("span.session.sum");
    assert!(sum.flagged && sum.class == MetricClass::Timing);
    assert_eq!(sum.delta, 7.0);

    // Unchanged metrics produce no finding at all.
    assert!(findings
        .iter()
        .all(|f| f.metric != "counter.sweep.cells.quarantined"));
    assert!(findings.iter().all(|f| f.metric != "gauge.net.queue.depth"));

    // Ranking: every flagged finding precedes every unflagged one.
    let first_unflagged = findings.iter().position(|f| !f.flagged);
    if let Some(cut) = first_unflagged {
        assert!(findings[cut..].iter().all(|f| !f.flagged), "{findings:?}");
    }
}

#[test]
fn identical_runs_diff_clean() {
    let a = load_run(&fixture("run_a.jsonl")).expect("run_a loads");
    let findings = diff(&a.metrics, &a.metrics, Thresholds::default());
    assert!(findings.is_empty(), "{findings:?}");
}
