//! `pano-obs`: post-hoc observability over pano run artifacts.
//!
//! Three capabilities, one small crate (DESIGN.md §14):
//!
//! * **Run-diff attribution** ([`diff`]) — load two runs (telemetry
//!   JSONL streams or `BENCH_*.json` artifacts), flatten each to a
//!   `metric → value` table and rank every difference. Exact-class
//!   metrics (counters, event counts, configuration) flag on *any*
//!   drift — on identical seeds they are covered by the determinism
//!   contract — while timing-class metrics (span percentiles, wall
//!   seconds, speedups) flag only when both a relative and an absolute
//!   threshold are exceeded, so benign scheduler noise never fails a
//!   gate.
//! * **Failure explanation** ([`explain`]) — find the quarantine
//!   records in a telemetry stream or checkpoint journal and render
//!   each cell's flight-recorder tail, ending with a "died N ms into
//!   span X" narrative reconstructed from the tail's span events.
//! * **Bench history** ([`append_history`]) — fold an artifact's
//!   flattened metrics into an append-only `bench_history.jsonl`, one
//!   record per measurement, written atomically.
//!
//! Everything here *reads* artifacts produced elsewhere; the only write
//! path is the history file, which goes through
//! [`pano_telemetry::atomic_write_str`].

use pano_telemetry::{atomic_write_str, Event, Json, Snapshot};
use std::collections::BTreeMap;
use std::path::Path;

/// Flattened run metrics: dotted metric name → numeric value.
pub type Metrics = BTreeMap<String, f64>;

/// A loaded run: display name plus flattened metrics.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Display name (the file name).
    pub source: String,
    /// Flattened `metric → value` table.
    pub metrics: Metrics,
}

/// Loads a run input — telemetry JSONL or a single-document JSON bench
/// artifact — and flattens it to metrics.
pub fn load_run(path: &Path) -> Result<RunMetrics, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let metrics = parse_run(&text).ok_or_else(|| {
        format!(
            "{}: not a telemetry JSONL stream or JSON bench artifact",
            path.display()
        )
    })?;
    let source = path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    Ok(RunMetrics { source, metrics })
}

/// Parses run text: a JSON document without a `kind` field is treated
/// as a bench artifact (numeric leaves flattened to dotted paths); any
/// other text is decoded as a telemetry event stream. `None` when the
/// text is neither.
pub fn parse_run(text: &str) -> Option<Metrics> {
    if let Some(doc) = Json::parse(text) {
        if doc.get("kind").is_none() {
            return Some(flatten_value("", &doc));
        }
    }
    stream_metrics(text)
}

/// Metrics of a telemetry JSONL stream: per-kind event counts, plus the
/// flattened final `run_summary` snapshot when the run emitted one.
/// Unparseable lines (the torn tail of a killed run) are skipped; a
/// stream with no parseable event at all is `None`.
fn stream_metrics(text: &str) -> Option<Metrics> {
    let mut metrics = Metrics::new();
    let mut summary: Option<Snapshot> = None;
    let mut parsed_any = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(event) = Event::from_json_line(line) else {
            continue;
        };
        parsed_any = true;
        *metrics
            .entry(format!("events.{}", event.kind))
            .or_insert(0.0) += 1.0;
        if event.kind == "run_summary" {
            // Last one wins: the stream's final aggregate state.
            summary = Snapshot::from_json(&event.fields).or(summary);
        }
    }
    if !parsed_any {
        return None;
    }
    if let Some(snap) = summary {
        flatten_snapshot(&snap, &mut metrics);
    }
    Some(metrics)
}

/// Flattens a telemetry snapshot: `counter.<name>`, `gauge.<name>`, and
/// per-histogram `count`/`sum`/`p50`/`p90`/`p99` under the histogram's
/// own name (`span.session.p90`, …).
pub fn flatten_snapshot(snap: &Snapshot, out: &mut Metrics) {
    for (name, v) in &snap.counters {
        out.insert(format!("counter.{name}"), *v as f64);
    }
    for (name, v) in &snap.gauges {
        out.insert(format!("gauge.{name}"), *v);
    }
    for (name, h) in &snap.histograms {
        out.insert(format!("{name}.count"), h.count as f64);
        out.insert(format!("{name}.sum"), h.sum);
        out.insert(format!("{name}.p50"), h.quantile(0.5));
        out.insert(format!("{name}.p90"), h.quantile(0.9));
        out.insert(format!("{name}.p99"), h.quantile(0.99));
    }
}

/// Recursively flattens a JSON document's numeric (and boolean, as 0/1)
/// leaves into dotted-path metrics. Arrays flatten by index.
pub fn flatten_value(prefix: &str, v: &Json) -> Metrics {
    let mut out = Metrics::new();
    flatten_into(prefix, v, &mut out);
    out
}

fn flatten_into(prefix: &str, v: &Json, out: &mut Metrics) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match v {
        Json::Obj(map) => {
            for (k, child) in map {
                flatten_into(&join(k), child, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten_into(&join(&i.to_string()), child, out);
            }
        }
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), f64::from(u8::from(*b)));
        }
        Json::Str(_) | Json::Null => {}
    }
}

/// How a metric is judged in a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Deterministic under the repo's contracts: any drift flags.
    Exact,
    /// Wall-clock-derived: flags only past both thresholds.
    Timing,
}

/// Classifies a flattened metric name. Counts and counters are exact;
/// anything carrying seconds, span timings or speedups is timing.
pub fn classify(name: &str) -> MetricClass {
    if name.starts_with("counter.") || name.starts_with("events.") || name.ends_with(".count") {
        return MetricClass::Exact;
    }
    if name.contains("secs") || name.contains("speedup") || name.starts_with("span.") {
        return MetricClass::Timing;
    }
    MetricClass::Exact
}

/// Flagging thresholds for timing-class metrics: a metric drifts only
/// when it moves by more than `rel` *relatively* AND `abs` in absolute
/// value — small spans jitter relatively, long sweeps jitter absolutely,
/// and requiring both keeps identical-seed diffs quiet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Relative drift gate, as a fraction (0.30 = 30%).
    pub rel: f64,
    /// Absolute drift gate, in the metric's own unit.
    pub abs: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            rel: 0.30,
            abs: 0.5,
        }
    }
}

/// One diffed metric.
#[derive(Debug, Clone)]
pub struct DiffFinding {
    /// Flattened metric name.
    pub metric: String,
    /// How the metric was judged.
    pub class: MetricClass,
    /// Value in run A (`None` when absent there).
    pub a: Option<f64>,
    /// Value in run B (`None` when absent there).
    pub b: Option<f64>,
    /// `b − a` (0 when either side is absent).
    pub delta: f64,
    /// `|delta|` relative to the larger magnitude (1.0 for appear/vanish).
    pub rel: f64,
    /// Whether this difference exceeds its class's gate.
    pub flagged: bool,
}

/// Diffs two flattened runs, returning every differing metric ranked
/// most-suspicious first: flagged before unflagged, then by relative
/// drift, then by name for a stable order.
pub fn diff(a: &Metrics, b: &Metrics, thresholds: Thresholds) -> Vec<DiffFinding> {
    let mut findings = Vec::new();
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        let class = classify(key);
        let finding = match (a.get(key), b.get(key)) {
            (Some(&x), Some(&y)) => {
                if x == y {
                    continue;
                }
                let delta = y - x;
                let scale = x.abs().max(y.abs());
                let rel = if scale > 0.0 {
                    delta.abs() / scale
                } else {
                    0.0
                };
                let flagged = match class {
                    MetricClass::Exact => true,
                    MetricClass::Timing => delta.abs() > thresholds.abs && rel > thresholds.rel,
                };
                DiffFinding {
                    metric: key.clone(),
                    class,
                    a: Some(x),
                    b: Some(y),
                    delta,
                    rel,
                    flagged,
                }
            }
            (x, y) => DiffFinding {
                metric: key.clone(),
                class,
                a: x.copied(),
                b: y.copied(),
                delta: 0.0,
                rel: 1.0,
                // A metric appearing or vanishing is structural drift,
                // whatever its class.
                flagged: true,
            },
        };
        findings.push(finding);
    }
    findings.sort_by(|p, q| {
        q.flagged
            .cmp(&p.flagged)
            .then_with(|| {
                q.rel
                    .partial_cmp(&p.rel)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| p.metric.cmp(&q.metric))
    });
    findings
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "—".to_string(),
        Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{v}"),
        Some(v) => format!("{v:.6}"),
    }
}

/// Renders a ranked diff as a text report. `top` bounds the rows shown;
/// the summary line always states how many findings were elided, so a
/// truncated report never reads as a complete one.
pub fn render_diff(a: &RunMetrics, b: &RunMetrics, findings: &[DiffFinding], top: usize) -> String {
    let flagged = findings.iter().filter(|f| f.flagged).count();
    let mut out = String::new();
    out.push_str(&format!("run diff: {} -> {}\n", a.source, b.source));
    out.push_str(&format!(
        "{} metrics differ, {} above thresholds\n",
        findings.len(),
        flagged
    ));
    if findings.is_empty() {
        out.push_str("runs are metric-identical\n");
        return out;
    }
    out.push_str(&format!(
        "{:<44} {:>14} {:>14} {:>12} {:>8}  class\n",
        "metric", "a", "b", "delta", "rel%"
    ));
    for f in findings.iter().take(top) {
        out.push_str(&format!(
            "{:<44} {:>14} {:>14} {:>12} {:>8.1} {} {}\n",
            f.metric,
            fmt_value(f.a),
            fmt_value(f.b),
            fmt_value(Some(f.delta)),
            f.rel * 100.0,
            if f.flagged { "!" } else { " " },
            match f.class {
                MetricClass::Exact => "exact",
                MetricClass::Timing => "timing",
            }
        ));
    }
    if findings.len() > top {
        out.push_str(&format!(
            "… {} more not shown (--top)\n",
            findings.len() - top
        ));
    }
    out
}

/// One explained failure, rendered as text lines.
#[derive(Debug, Clone)]
pub struct Explained {
    /// `(label, cell index)` when known.
    pub cell: Option<(String, u64)>,
    /// The rendered block.
    pub text: String,
}

/// Scans a telemetry JSONL stream or checkpoint journal for quarantine
/// records and renders each one's flight-recorder tail with a
/// died-inside-span narrative. Unparseable lines are skipped — the
/// input may be the torn artifact of a killed run.
pub fn explain(text: &str) -> Vec<Explained> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(v) = Json::parse(line) else { continue };
        if v.get("kind").and_then(Json::as_str) == Some("cell_quarantined") {
            if let Some(e) = explain_quarantine_event(&v) {
                out.push(e);
            }
        } else if v.get("failed").and_then(Json::as_bool) == Some(true) {
            if let Some(e) = explain_journal_failure(&v) {
                out.push(e);
            }
        }
    }
    out
}

fn explain_quarantine_event(v: &Json) -> Option<Explained> {
    let fields = v.get("fields")?;
    let label = fields.get("label").and_then(Json::as_str).unwrap_or("?");
    let cell = fields.get("cell").and_then(Json::as_f64).unwrap_or(-1.0) as u64;
    let tail: Vec<String> = fields
        .get("tail")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|l| l.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Some(Explained {
        cell: Some((label.to_string(), cell)),
        text: render_failure(
            label,
            cell,
            fields.get("seed").and_then(Json::as_f64),
            fields.get("attempts").and_then(Json::as_f64),
            fields.get("elapsed_secs").and_then(Json::as_f64),
            fields.get("panic").and_then(Json::as_str).unwrap_or(""),
            &tail,
        ),
    })
}

fn explain_journal_failure(v: &Json) -> Option<Explained> {
    let failure = v.get("failure")?;
    let label = v.get("label").and_then(Json::as_str).unwrap_or("?");
    let cell = v.get("cell").and_then(Json::as_f64).unwrap_or(-1.0) as u64;
    let tail: Vec<String> = failure
        .get("tail")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|l| l.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Some(Explained {
        cell: Some((label.to_string(), cell)),
        text: render_failure(
            label,
            cell,
            v.get("cell_seed").and_then(Json::as_f64),
            failure.get("attempts").and_then(Json::as_f64),
            failure.get("elapsed_secs").and_then(Json::as_f64),
            failure
                .get("panic_msg")
                .and_then(Json::as_str)
                .unwrap_or(""),
            &tail,
        ),
    })
}

fn render_failure(
    label: &str,
    cell: u64,
    seed: Option<f64>,
    attempts: Option<f64>,
    elapsed: Option<f64>,
    panic_msg: &str,
    tail: &[String],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("cell {cell} of `{label}` quarantined"));
    if let Some(a) = attempts {
        out.push_str(&format!(" after {a} attempt(s)"));
    }
    if let Some(e) = elapsed {
        out.push_str(&format!(", {e:.3}s elapsed"));
    }
    out.push('\n');
    if let Some(s) = seed {
        out.push_str(&format!("  seed: {:#018x}\n", s as u64));
    }
    if !panic_msg.is_empty() {
        out.push_str(&format!("  panic: {panic_msg}\n"));
    }
    if tail.is_empty() {
        out.push_str("  flight recorder: empty (recorder disabled or cell died silently)\n");
        return out;
    }
    out.push_str(&format!("  last {} events before death:\n", tail.len()));
    let events: Vec<Option<Event>> = tail.iter().map(|l| Event::from_json_line(l)).collect();
    for (line, event) in tail.iter().zip(&events) {
        match event {
            Some(e) => out.push_str(&format!("    {}\n", render_event(e))),
            None => out.push_str(&format!("    (unparseable) {line}\n")),
        }
    }
    out.push_str(&format!("  {}\n", death_narrative(&events)));
    out
}

/// Renders one tail event compactly.
fn render_event(e: &Event) -> String {
    match e.kind.as_str() {
        "span_begin" | "span_end" => {
            let path = e.fields.get("path").and_then(Json::as_str).unwrap_or("?");
            let t_us = e.fields.get("t_us").and_then(Json::as_f64).unwrap_or(0.0);
            let arrow = if e.kind == "span_begin" { ">" } else { "<" };
            format!("[{:>10.0}us] {arrow} {path}", t_us)
        }
        _ => match e.t_secs {
            Some(t) => format!("[t={t:.3}s] {} {}", e.kind, e.fields),
            None => format!("{} {}", e.kind, e.fields),
        },
    }
}

/// Reconstructs where the cell died from the tail's span events: the
/// innermost span still open at the end of the tail, and how far into
/// it the last recorded event falls.
fn death_narrative(events: &[Option<Event>]) -> String {
    // Per-tid stacks of (path, begin t_us).
    let mut open: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    let mut last_us: Option<f64> = None;
    for e in events.iter().flatten() {
        let tid = e.fields.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let t_us = e.fields.get("t_us").and_then(Json::as_f64);
        if let Some(t) = t_us {
            last_us = Some(last_us.map_or(t, |l: f64| l.max(t)));
        }
        match e.kind.as_str() {
            "span_begin" => {
                let path = e
                    .fields
                    .get("path")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                open.entry(tid)
                    .or_default()
                    .push((path, t_us.unwrap_or(0.0)));
            }
            "span_end" => {
                open.entry(tid).or_default().pop();
            }
            _ => {}
        }
    }
    let innermost = open
        .values()
        .filter_map(|stack| stack.last())
        .max_by(|p, q| p.1.partial_cmp(&q.1).unwrap_or(std::cmp::Ordering::Equal));
    match (innermost, last_us) {
        (Some((path, begin)), Some(last)) => format!(
            "diagnosis: died ~{:.1}ms after entering span `{path}`",
            (last - begin) / 1000.0
        ),
        (Some((path, _)), None) => {
            format!("diagnosis: died inside span `{path}`")
        }
        _ => "diagnosis: no span open at death (tail has no trace; re-run with --trace for span-level attribution)".to_string(),
    }
}

/// Appends one record to the bench-history JSONL: `{"seq": n, "source":
/// name, "metrics": {…}}`. The whole file is rewritten through
/// [`atomic_write_str`], so a crash never tears it. Returns the new
/// record's sequence number.
pub fn append_history(path: &Path, source: &str, metrics: &Metrics) -> std::io::Result<u64> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut lines: Vec<String> = existing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    let seq = lines.len() as u64 + 1;
    let record = Json::obj([
        ("seq", Json::from(seq)),
        ("source", Json::from(source)),
        (
            "metrics",
            Json::obj(metrics.iter().map(|(k, v)| (k.as_str(), Json::from(*v)))),
        ),
    ]);
    lines.push(record.to_string());
    atomic_write_str(path, &(lines.join("\n") + "\n"))?;
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_separates_exact_from_timing() {
        assert_eq!(classify("counter.sim.fetch.store_hits"), MetricClass::Exact);
        assert_eq!(classify("events.chunk"), MetricClass::Exact);
        assert_eq!(classify("span.session.count"), MetricClass::Exact);
        assert_eq!(classify("span.session.p90"), MetricClass::Timing);
        assert_eq!(classify("serial.wall_secs"), MetricClass::Timing);
        assert_eq!(classify("speedup"), MetricClass::Timing);
        assert_eq!(classify("serial.workers"), MetricClass::Exact);
        assert_eq!(classify("json_identical"), MetricClass::Exact);
    }

    #[test]
    fn bench_artifacts_flatten_numeric_and_bool_leaves() {
        let doc = Json::parse(
            r#"{"experiment":"sweep","cells":12,"json_identical":true,
                "serial":{"wall_secs":2.5,"workers":1},
                "parallel":{"wall_secs":0.9,"workers":4},"speedup":2.77}"#,
        )
        .expect("parse");
        let m = flatten_value("", &doc);
        assert_eq!(m["cells"], 12.0);
        assert_eq!(m["json_identical"], 1.0);
        assert_eq!(m["serial.wall_secs"], 2.5);
        assert_eq!(m["parallel.workers"], 4.0);
        assert_eq!(m["speedup"], 2.77);
        assert!(!m.contains_key("experiment"), "strings are not metrics");
    }

    #[test]
    fn diff_flags_exact_drift_and_tolerates_timing_jitter() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.insert("counter.hits".into(), 100.0);
        b.insert("counter.hits".into(), 99.0);
        a.insert("span.session.p90".into(), 1.00);
        b.insert("span.session.p90".into(), 1.20); // +20%, under 30% gate
        a.insert("serial.wall_secs".into(), 10.0);
        b.insert("serial.wall_secs".into(), 20.0); // +100% and +10s: drift
        let out = diff(&a, &b, Thresholds::default());
        let flagged: Vec<&str> = out
            .iter()
            .filter(|f| f.flagged)
            .map(|f| f.metric.as_str())
            .collect();
        assert_eq!(flagged, vec!["serial.wall_secs", "counter.hits"]);
        // The tolerated jitter still appears, unflagged, after them.
        assert!(out
            .iter()
            .any(|f| f.metric == "span.session.p90" && !f.flagged));
    }

    #[test]
    fn diff_of_identical_runs_is_empty() {
        let mut a = Metrics::new();
        a.insert("counter.hits".into(), 100.0);
        a.insert("span.session.p90".into(), 1.0);
        assert!(diff(&a, &a.clone(), Thresholds::default()).is_empty());
    }

    #[test]
    fn appearing_and_vanishing_metrics_always_flag() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.insert("counter.only_in_a".into(), 1.0);
        b.insert("span.only_in_b.p50".into(), 0.001);
        let out = diff(&a, &b, Thresholds::default());
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.flagged));
    }

    #[test]
    fn timing_needs_both_gates() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        // Huge relative, tiny absolute: a 2ms span tripling.
        a.insert("span.tiny.p99".into(), 0.002);
        b.insert("span.tiny.p99".into(), 0.006);
        // Tiny relative, huge absolute: a 1000s sweep moving 20s.
        a.insert("sweep.wall_secs".into(), 1000.0);
        b.insert("sweep.wall_secs".into(), 1020.0);
        let out = diff(&a, &b, Thresholds::default());
        assert!(out.iter().all(|f| !f.flagged), "{out:?}");
    }

    #[test]
    fn explain_renders_quarantine_events_with_a_narrative() {
        let tail_begin = r#"{"run_id":"00000000000000aa","seed":3,"kind":"span_begin","fields":{"path":"session","tid":1,"t_us":100}}"#;
        let tail_step = r#"{"run_id":"00000000000000aa","seed":3,"kind":"chunk","fields":{"idx":4},"t_secs":1.5}"#;
        let line = Json::obj([
            ("run_id", Json::from("00000000000000ff")),
            ("seed", Json::from(3u64)),
            ("kind", Json::from("cell_quarantined")),
            (
                "fields",
                Json::obj([
                    ("label", Json::from("fig15")),
                    ("cell", Json::from(7u64)),
                    ("seed", Json::from(42u64)),
                    ("attempts", Json::from(1u64)),
                    ("elapsed_secs", Json::from(0.25)),
                    ("panic", Json::from("boom")),
                    (
                        "tail",
                        Json::arr([Json::from(tail_begin), Json::from(tail_step)]),
                    ),
                ]),
            ),
        ])
        .to_string();
        let out = explain(&line);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell, Some(("fig15".to_string(), 7)));
        let text = &out[0].text;
        assert!(text.contains("cell 7 of `fig15`"), "{text}");
        assert!(text.contains("panic: boom"), "{text}");
        assert!(text.contains("last 2 events"), "{text}");
        assert!(
            text.contains("died") && text.contains("span `session`"),
            "{text}"
        );
    }

    #[test]
    fn explain_reads_journal_failure_records() {
        let line = r#"{"v":1,"label":"fig16","sweep_seed":9,"fingerprint":1,"cell":2,"cell_seed":77,"failed":true,"failure":{"index":2,"seed":77,"panic_msg":"injected","attempts":1,"elapsed_secs":0.1,"tail":[]}}"#;
        let out = explain(line);
        assert_eq!(out.len(), 1);
        assert!(out[0].text.contains("cell 2 of `fig16`"));
        assert!(out[0].text.contains("injected"));
        assert!(out[0].text.contains("flight recorder: empty"));
    }

    #[test]
    fn history_appends_sequenced_records_atomically() {
        let dir = std::env::temp_dir().join(format!("pano_obs_hist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bench_history.jsonl");
        let mut m = Metrics::new();
        m.insert("speedup".into(), 2.5);
        assert_eq!(
            append_history(&path, "BENCH_sweep.json", &m).expect("append"),
            1
        );
        m.insert("speedup".into(), 2.7);
        assert_eq!(
            append_history(&path, "BENCH_sweep.json", &m).expect("append"),
            2
        );
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let last = Json::parse(lines[1]).expect("parse");
        assert_eq!(last.get("seq").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            last.get("metrics")
                .and_then(|m| m.get("speedup"))
                .and_then(Json::as_f64),
            Some(2.7)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_metrics_counts_events_and_folds_the_summary() {
        let stream = [
            r#"{"run_id":"00000000000000aa","seed":1,"kind":"chunk","fields":{},"t_secs":0.5}"#,
            r#"{"run_id":"00000000000000aa","seed":1,"kind":"chunk","fields":{},"t_secs":1.0}"#,
            r#"{"run_id":"00000000000000aa","seed":1,"kind":"run_summary","fields":{"counters":{"hits":3},"gauges":{},"histograms":{}}}"#,
            "{torn",
        ]
        .join("\n");
        let m = parse_run(&stream).expect("stream parses");
        assert_eq!(m["events.chunk"], 2.0);
        assert_eq!(m["events.run_summary"], 1.0);
        assert_eq!(m["counter.hits"], 3.0);
    }
}
