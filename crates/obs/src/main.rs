//! `pano-obs` — inspect, diff and explain pano run artifacts.
//!
//! ```text
//! pano-obs diff <A> <B> [--rel F] [--abs F] [--top N] [--soft]
//! pano-obs explain <FILE>...
//! pano-obs trace <IN.jsonl> <OUT.trace.json>
//! pano-obs history <ARTIFACT>... --out <HISTORY.jsonl>
//! ```
//!
//! Exit codes form the CI contract: `0` clean, `1` fatal (unreadable or
//! unrecognised input), `2` usage, `4` drift above thresholds (`diff`
//! without `--soft` only — `--soft` reports the same findings but exits
//! `0`, the warn-only gate).

use pano_obs::{append_history, diff, explain, load_run, render_diff, RunMetrics, Thresholds};
use std::path::PathBuf;
use std::process::ExitCode;

const EXIT_OK: u8 = 0;
const EXIT_FATAL: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_DRIFT: u8 = 4;

const USAGE: &str = "pano-obs — inspect, diff and explain pano run artifacts

USAGE:
    pano-obs diff <A> <B> [--rel F] [--abs F] [--top N] [--soft]
    pano-obs explain <FILE>...
    pano-obs trace <IN.jsonl> <OUT.trace.json>
    pano-obs history <ARTIFACT>... --out <HISTORY.jsonl>

INPUTS:
    Telemetry JSONL streams (results/telemetry/<run>.jsonl), checkpoint
    journals (results/checkpoints/*.jsonl) and JSON bench artifacts
    (BENCH_*.json) are all accepted where they make sense.

OPTIONS (diff):
    --rel F    relative drift gate for timing metrics (default 0.30)
    --abs F    absolute drift gate for timing metrics (default 0.5)
    --top N    max rows to print (default 20)
    --soft     report drift but exit 0 (warn-only CI gate)

EXIT CODES:
    0 clean   1 fatal   2 usage   4 drift above thresholds";

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} needs a value"));
    }
    args.remove(i);
    Ok(Some(args.remove(i)))
}

fn take_f64(args: &mut Vec<String>, name: &str) -> Result<Option<f64>, String> {
    match take_value(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| format!("{name} needs a number, got `{v}`")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if take_flag(&mut args, "--help") || take_flag(&mut args, "-h") || args.is_empty() {
        println!("{USAGE}");
        return ExitCode::from(EXIT_OK);
    }
    let command = args.remove(0);
    let outcome = match command.as_str() {
        "diff" => cmd_diff(args),
        "explain" => cmd_explain(args),
        "trace" => cmd_trace(args),
        "history" => cmd_history(args),
        other => Err((EXIT_USAGE, format!("unknown command `{other}`\n\n{USAGE}"))),
    };
    match outcome {
        Ok(code) => ExitCode::from(code),
        Err((code, message)) => {
            eprintln!("pano-obs: {message}");
            ExitCode::from(code)
        }
    }
}

fn cmd_diff(mut args: Vec<String>) -> Result<u8, (u8, String)> {
    let usage = |m: String| (EXIT_USAGE, m);
    let rel = take_f64(&mut args, "--rel").map_err(usage)?;
    let abs = take_f64(&mut args, "--abs").map_err(usage)?;
    let top = take_value(&mut args, "--top")
        .map_err(usage)?
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--top needs an integer, got `{v}`"))
        })
        .transpose()
        .map_err(usage)?
        .unwrap_or(20);
    let soft = take_flag(&mut args, "--soft");
    let [a, b]: [String; 2] = <[String; 2]>::try_from(args)
        .map_err(|rest| usage(format!("diff takes exactly two inputs, got {}", rest.len())))?;

    let defaults = Thresholds::default();
    let thresholds = Thresholds {
        rel: rel.unwrap_or(defaults.rel),
        abs: abs.unwrap_or(defaults.abs),
    };
    let a = load_metrics(&a)?;
    let b = load_metrics(&b)?;
    let findings = diff(&a.metrics, &b.metrics, thresholds);
    print!("{}", render_diff(&a, &b, &findings, top));
    let drift = findings.iter().any(|f| f.flagged);
    if drift && soft {
        println!("drift above thresholds (soft mode: exiting 0)");
    }
    Ok(if drift && !soft { EXIT_DRIFT } else { EXIT_OK })
}

fn load_metrics(path: &str) -> Result<RunMetrics, (u8, String)> {
    load_run(&PathBuf::from(path)).map_err(|e| (EXIT_FATAL, e))
}

fn cmd_explain(args: Vec<String>) -> Result<u8, (u8, String)> {
    if args.is_empty() {
        return Err((
            EXIT_USAGE,
            format!("explain needs at least one file\n\n{USAGE}"),
        ));
    }
    let mut failures = 0usize;
    for path in &args {
        let text =
            std::fs::read_to_string(path).map_err(|e| (EXIT_FATAL, format!("{path}: {e}")))?;
        for block in explain(&text) {
            failures += 1;
            println!("— {path}");
            print!("{}", block.text);
        }
    }
    if failures == 0 {
        println!("no quarantined cells found in {} file(s)", args.len());
    }
    Ok(EXIT_OK)
}

fn cmd_trace(args: Vec<String>) -> Result<u8, (u8, String)> {
    let [input, output]: [String; 2] = <[String; 2]>::try_from(args).map_err(|rest| {
        (
            EXIT_USAGE,
            format!(
                "trace takes <IN.jsonl> <OUT.trace.json>, got {} args",
                rest.len()
            ),
        )
    })?;
    let n =
        pano_telemetry::trace::write_chrome_trace(&PathBuf::from(&input), &PathBuf::from(&output))
            .map_err(|e| (EXIT_FATAL, format!("{input}: {e}")))?;
    println!("wrote {output}: {n} trace events");
    Ok(EXIT_OK)
}

fn cmd_history(mut args: Vec<String>) -> Result<u8, (u8, String)> {
    let out = take_value(&mut args, "--out")
        .map_err(|m| (EXIT_USAGE, m))?
        .ok_or((
            EXIT_USAGE,
            "history needs --out <HISTORY.jsonl>".to_string(),
        ))?;
    if args.is_empty() {
        return Err((
            EXIT_USAGE,
            format!("history needs at least one artifact\n\n{USAGE}"),
        ));
    }
    let out_path = PathBuf::from(&out);
    for path in &args {
        let run = load_metrics(path)?;
        let seq = append_history(&out_path, &run.source, &run.metrics)
            .map_err(|e| (EXIT_FATAL, format!("{out}: {e}")))?;
        println!("{out}: appended seq {seq} from {}", run.source);
    }
    Ok(EXIT_OK)
}
