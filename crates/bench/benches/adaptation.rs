//! Fig. 17a bench: the client-side per-chunk compute — viewpoint
//! prediction, conservative estimation, MPC budgeting, and the full
//! session step for Pano and the viewport-driven baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use pano_abr::{BolaConfig, BolaController, MpcConfig, MpcController};
use pano_sim::asset::{AssetConfig, AssetStore};
use pano_sim::{simulate_session, Method, SessionConfig};
use pano_trace::{
    BandwidthTrace, ConservativeSpeedEstimator, LinearViewpointPredictor, TraceGenerator,
};
use pano_video::{Genre, VideoSpec};

fn bench_adaptation(c: &mut Criterion) {
    let spec = VideoSpec::generate(1, Genre::Sports, 8.0, 77);
    let video = AssetStore::new().get(
        &spec,
        &AssetConfig {
            history_users: 3,
            ..AssetConfig::default()
        },
    );
    let trace = TraceGenerator::default().generate(&video.scene, 11);
    let bw = BandwidthTrace::lte_high(60.0, 3);
    let cfg = SessionConfig::default();

    c.bench_function("predict_viewpoint", |b| {
        let p = LinearViewpointPredictor::default();
        b.iter(|| p.predict(&trace, 5.0, 2.0))
    });
    c.bench_function("conservative_speed", |b| {
        let e = ConservativeSpeedEstimator::default();
        b.iter(|| e.estimate(&trace, 5.0))
    });
    c.bench_function("mpc_pick_rate", |b| {
        let ladder = vec![60_000u64, 99_000, 172_000, 303_000, 535_000];
        b.iter(|| MpcController::new(MpcConfig::default()).pick_rate(&ladder, 2.0, 1.0e6, 1.0))
    });
    c.bench_function("bola_pick_rate", |b| {
        let ladder = vec![60_000u64, 99_000, 172_000, 303_000, 535_000];
        let bola = BolaController::new(BolaConfig::default());
        b.iter(|| bola.pick_rate(&ladder, 2.0, 1.0))
    });
    c.bench_function("session_pano_8s", |b| {
        b.iter(|| simulate_session(&video, Method::Pano, &trace, &bw, &cfg))
    });
    c.bench_function("session_flare_8s", |b| {
        b.iter(|| simulate_session(&video, Method::Flare, &trace, &bw, &cfg))
    });
    c.bench_function("session_whole_8s", |b| {
        b.iter(|| simulate_session(&video, Method::WholeVideo, &trace, &bw, &cfg))
    });
}

criterion_group! {
    name = benches;
    // Session-scale benches: one iteration simulates a whole playback
    // session, so keep sampling short.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_adaptation
}
criterion_main!(benches);
