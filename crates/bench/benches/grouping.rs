//! Fig. 9 / DESIGN §4.4 ablation bench: variable-size tile grouping cost
//! as the target tile count N sweeps — the provider-side compute behind
//! the "variable-size tiling is more compute-intensive than grid tiling"
//! observation of Fig. 17c.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pano_geo::GridDims;
use pano_jnd::{ActionState, PspnrComputer};
use pano_tiling::{efficiency_scores, group_tiles};
use pano_video::codec::Encoder;
use pano_video::{FeatureExtractor, Genre, VideoSpec};

fn bench_grouping(c: &mut Criterion) {
    let spec = VideoSpec::generate(0, Genre::Sports, 4.0, 42);
    let scene = spec.scene();
    let dims = GridDims::PANO_UNIT;
    let features = FeatureExtractor::new(spec.resolution, dims).extract(&scene, spec.fps, 0, 1.0);
    let actions = vec![ActionState::REST; dims.cell_count()];
    let grid = efficiency_scores(
        &Encoder::default(),
        &PspnrComputer::default(),
        &spec.resolution,
        &features,
        &actions,
    );

    // The score computation itself (288 unit-tile encodings + PSPNR).
    c.bench_function("fig9_efficiency_scores", |b| {
        b.iter(|| {
            efficiency_scores(
                &Encoder::default(),
                &PspnrComputer::default(),
                &spec.resolution,
                &features,
                &actions,
            )
        })
    });

    // The top-down grouping at different target tile counts.
    let mut group = c.benchmark_group("fig9_group_tiles");
    for n in [6usize, 15, 30, 60, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| group_tiles(&grid, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
