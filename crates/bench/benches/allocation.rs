//! DESIGN §4.1 ablation bench: tile-level quality allocation — the
//! Pareto-frontier solver (the paper's §6.1 pruned search) versus the
//! greedy ladder climb and the exhaustive oracle, across tile counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pano_abr::allocate::{allocate_exhaustive, allocate_greedy, allocate_pareto, TileChoice};

fn make_tiles(n: usize, seed: u64) -> Vec<TileChoice> {
    // Deterministic pseudo-random tiles spanning realistic size/PMSE mixes.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let base = 2_000.0 + 30_000.0 * next();
            let pmse0 = 0.5 + 80.0 * next();
            let mut size_bytes = [0u64; 5];
            let mut pmse = [0.0; 5];
            for l in 0..5 {
                size_bytes[l] = (base * 1.75f64.powi(l as i32)) as u64;
                pmse[l] = pmse0 / 2.4f64.powi(l as i32);
            }
            TileChoice {
                size_bytes,
                pmse,
                pixel_area: 10_000 + 500 * i as u64,
            }
        })
        .collect()
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    for n in [10usize, 30, 72] {
        let tiles = make_tiles(n, 7);
        let budget: u64 = tiles.iter().map(|t| t.size_bytes[0]).sum::<u64>() * 2 + n as u64 * 5_000;
        group.bench_with_input(BenchmarkId::new("pareto", n), &tiles, |b, tiles| {
            b.iter(|| allocate_pareto(tiles, budget))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &tiles, |b, tiles| {
            b.iter(|| allocate_greedy(tiles, budget))
        });
    }
    // The exhaustive oracle only fits tiny instances.
    let tiles = make_tiles(6, 7);
    let budget: u64 = tiles.iter().map(|t| t.size_bytes[2]).sum();
    group.bench_with_input(BenchmarkId::new("exhaustive", 6), &tiles, |b, tiles| {
        b.iter(|| allocate_exhaustive(tiles, budget))
    });
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
