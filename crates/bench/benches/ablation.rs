//! Fig. 18a ablation bench: provider preparation and one full session per
//! method rung (viewport-driven → +JND allocation → +360JND → full Pano),
//! so the compute cost of each capability is measurable alongside the
//! bandwidth savings the `repro fig18a` experiment reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pano_sim::asset::{AssetConfig, AssetStore};
use pano_sim::{simulate_session, Method, SessionConfig};
use pano_trace::{BandwidthTrace, TraceGenerator};
use pano_video::{Genre, VideoSpec};

fn bench_ablation(c: &mut Criterion) {
    let spec = VideoSpec::generate(1, Genre::Sports, 6.0, 42);
    let config = AssetConfig {
        history_users: 3,
        ..AssetConfig::default()
    };

    c.bench_function("prepare_video_6s", |b| {
        // A fresh store per iteration keeps the build cost visible (a
        // shared store would cache-hit after the first sample).
        b.iter(|| AssetStore::new().get(&spec, &config))
    });

    let video = AssetStore::new().get(&spec, &config);
    let trace = TraceGenerator::default().generate(&video.scene, 5);
    let bw = BandwidthTrace::lte_high(60.0, 9);
    let cfg = SessionConfig::default();

    let mut group = c.benchmark_group("fig18a_session_per_rung");
    for method in Method::ABLATION {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| b.iter(|| simulate_session(&video, m, &trace, &bw, &cfg)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_ablation
}
criterion_main!(benches);
