//! Fig. 4 bench: encoding cost of one chunk under different tiling
//! granularities, plus the size ratios themselves (reported via
//! Criterion's throughput labels — run `repro fig4` for the table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pano_geo::GridDims;
use pano_tiling::uniform_tiling;
use pano_video::codec::Encoder;
use pano_video::{FeatureExtractor, Genre, VideoSpec};

fn bench_tiling_overhead(c: &mut Criterion) {
    let spec = VideoSpec::generate(0, Genre::Sports, 4.0, 42);
    let scene = spec.scene();
    let dims = GridDims::PANO_UNIT;
    let features = FeatureExtractor::new(spec.resolution, dims).extract(&scene, spec.fps, 0, 1.0);
    let encoder = Encoder::default();

    let mut group = c.benchmark_group("fig4_encode_chunk");
    for (rows, cols) in [(1u16, 1u16), (3, 6), (6, 12), (12, 24)] {
        let tiling = if rows == 1 && cols == 1 {
            vec![dims.full_rect()]
        } else {
            uniform_tiling(dims, rows, cols)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &tiling,
            |b, tiling| {
                b.iter(|| encoder.encode_chunk(&spec.resolution, &features, tiling));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tiling_overhead);
criterion_main!(benches);
