//! §6.3 bench: building and querying the PSPNR lookup tables across the
//! compression ladder (full n³ → 1-D ratio → power regression), the
//! machinery behind the manifest-size and start-up-delay numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use pano_abr::lookup::LookupBuilder;
use pano_abr::LookupScheme;
use pano_geo::{Equirect, GridDims, GridRect};
use pano_jnd::{ActionState, PspnrComputer};
use pano_video::codec::{EncodedTile, Encoder, QualityLevel};
use pano_video::ChunkFeatures;

fn chunk_fixture(n_chunks: usize) -> Vec<(ChunkFeatures, Vec<EncodedTile>)> {
    let enc = Encoder::default();
    let eq = Equirect::PAPER_FULL;
    let dims = GridDims::PANO_UNIT;
    let tiling = vec![
        GridRect::new(0, 0, 12, 8),
        GridRect::new(0, 8, 12, 8),
        GridRect::new(0, 16, 12, 8),
    ];
    (0..n_chunks)
        .map(|i| {
            let f = ChunkFeatures::uniform(
                i,
                1.0,
                30,
                dims,
                15.0 + (i % 7) as f64,
                (i % 5) as f64,
                100.0 + 10.0 * (i % 9) as f64,
                0.4,
            );
            let encoded = enc.encode_chunk(&eq, &f, &tiling);
            (f, encoded.tiles)
        })
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let computer = PspnrComputer::default();
    let owned = chunk_fixture(10);
    let chunks: Vec<(&ChunkFeatures, &[EncodedTile])> =
        owned.iter().map(|(f, t)| (f, t.as_slice())).collect();
    let builder = LookupBuilder::new(&computer);

    c.bench_function("lookup_build_full", |b| {
        b.iter(|| builder.build_full(&chunks))
    });
    c.bench_function("lookup_build_ratio", |b| {
        b.iter(|| builder.build_ratio(&chunks))
    });
    c.bench_function("lookup_build_power", |b| {
        b.iter(|| builder.build_power(&chunks))
    });

    let full = builder.build_full(&chunks);
    let ratio = builder.build_ratio(&chunks);
    let power = builder.build_power(&chunks);
    let action = ActionState {
        rel_speed_deg_s: 12.0,
        lum_change: 60.0,
        dof_diff: 0.5,
    };
    c.bench_function("lookup_estimate_full", |b| {
        b.iter(|| full.estimate(3, 1, QualityLevel(2), &action))
    });
    c.bench_function("lookup_estimate_ratio", |b| {
        b.iter(|| ratio.estimate(3, 1, QualityLevel(2), &action))
    });
    c.bench_function("lookup_estimate_power", |b| {
        b.iter(|| power.estimate(3, 1, QualityLevel(2), &action))
    });
    c.bench_function("lookup_serialize_power", |b| {
        b.iter(|| power.serialized_bytes())
    });
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
