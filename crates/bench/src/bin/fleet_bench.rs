//! `fleet_bench` — wall-clock benchmark of the event-engine fleet core.
//!
//! Stands up the default fleet (session count overridable with
//! `PANO_FLEET_SESSIONS`) twice on the virtual-clock engine, verifies
//! the two runs produce byte-identical JSON — the engine's determinism
//! claim, measured rather than assumed — and writes a `BENCH_fleet.json`
//! artifact with sessions/sec, events/sec, peak queue depth, peak RSS,
//! and the trace-heap sharing note.
//!
//! ```text
//! cargo run --release -p pano-bench --bin fleet_bench [-- out.json] [--trace]
//! ```
//!
//! With `--trace`, each timed run additionally streams span-traced
//! telemetry to `results/telemetry/<run_id>.jsonl` and folds it into a
//! Chrome trace next to it — see DESIGN.md §14.

use pano_bench::{bench_run, finish_run};
use pano_sim::engine::{run_fleet, FleetConfig, FleetResult};
use pano_sim::experiments::fleet::sessions_from_env;
use pano_sim::SessionConfig;
use pano_telemetry::atomic_write;
use std::time::Instant;

/// Default fleet size for the CI benchmark: big enough that the event
/// queue is genuinely interleaved, small enough for a PR gate.
const DEFAULT_SESSIONS: usize = 2000;

/// Peak resident-set size in KiB, from `/proc/self/status` `VmHWM`.
/// Returns 0 where procfs is unavailable (non-Linux) — the drift gate
/// treats a missing row as informational, never fatal.
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn timed_run(label: &str, sessions: usize, trace: bool) -> (f64, Vec<u8>, FleetResult) {
    let run = bench_run(label, 0xF1EE7, trace);
    let config = FleetConfig {
        sessions,
        session: SessionConfig {
            telemetry: run.telemetry.clone(),
            ..SessionConfig::default()
        },
        ..FleetConfig::default()
    };
    let t0 = Instant::now();
    let (result, session_results) = run_fleet(&config);
    let secs = t0.elapsed().as_secs_f64();
    let bytes = serde_json::to_vec(&(&result, &session_results)).expect("serialise fleet run");
    if let Some(tp) = finish_run(&run) {
        println!("fleet_bench: trace at {}", tp.display());
    }
    (secs, bytes, result)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = match args.iter().position(|a| a == "--trace") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    let out_path = args
        .into_iter()
        .next()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let sessions = sessions_from_env(DEFAULT_SESSIONS);

    let (first_secs, first_bytes, result) = timed_run("fleet-bench-a", sessions, trace);
    let (second_secs, second_bytes, _) = timed_run("fleet-bench-b", sessions, trace);

    let identical = first_bytes == second_bytes;
    assert!(
        identical,
        "fleet runs must be byte-identical across repetitions"
    );

    let secs = first_secs.min(second_secs);
    let sessions_per_sec = result.sessions as f64 / secs.max(1e-9);
    let events_per_sec = result.events_processed as f64 / secs.max(1e-9);
    let report = serde_json::json!({
        "experiment": "fleet",
        "sessions": result.sessions,
        "json_identical": identical,
        "wall_secs": secs,
        "sessions_per_sec": sessions_per_sec,
        "events_per_sec": events_per_sec,
        "events_processed": result.events_processed,
        "peak_queue_len": result.peak_queue_len,
        "peak_rss_kib": peak_rss_kib(),
        "mean_pspnr_db": result.mean_pspnr_db,
        "trace_heap_bytes_shared": result.trace_heap_bytes_shared,
        "trace_heap_bytes_if_cloned": result.trace_heap_bytes_if_cloned,
    });
    if let Err(err) = atomic_write(
        &out_path,
        &serde_json::to_vec_pretty(&report).expect("serialise report"),
    ) {
        eprintln!("error: failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    println!(
        "fleet_bench: {} sessions in {secs:.2}s ({sessions_per_sec:.0} sessions/s, \
         {events_per_sec:.0} events/s, peak queue {}); runs byte-identical; wrote {out_path}",
        result.sessions, result.peak_queue_len
    );
}
