//! `hotpath_bench` — wall-clock benchmark of the asset-preparation hot
//! paths, with a regression gate against a committed baseline.
//!
//! Times a cold [`PreparedVideo::prepare`] of the default sports video at
//! 1/2/4/pool workers (verifying the artefacts are byte-identical at every
//! count), then micro-benchmarks the kernels the preparation and client
//! hot paths lean on: the fused PMSE-with-JND-spread pass (scalar and
//! lane-batched), the power-law lookup build (both kernel paths, arena
//! reused), feature extraction, the online lookup estimate, the Pareto
//! bitrate allocation, and the arena frame round-trip. Results land in
//! `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run --release -p pano-bench --bin hotpath_bench -- \
//!     [OUT.json] [--baseline PATH] [--min-speedup X] \
//!     [--min-kernel-speedup X] [--write-baseline PATH] [--trace]
//! ```
//!
//! `--min-kernel-speedup X` fails the run unless the lane-batched PMSE
//! and lookup-build kernels are at least `X`× faster than their scalar
//! twins *measured in this process* — a machine-independent vectorization
//! gate that needs no committed reference numbers.
//!
//! With `--trace`, the prepare runs stream span-traced telemetry to
//! `results/telemetry/<run_id>.jsonl` and the flushed stream is folded
//! into a Chrome trace next to it — see DESIGN.md §14. Expect the traced
//! wall-clocks to read slightly high; the artifact byte-identity check
//! is unaffected.
//!
//! The regression gate compares the measured serial prepare against
//! `--baseline` after rescaling by a fixed-FP-workload calibration (so a
//! faster or slower runner does not trip it), with 20% tolerance. A
//! baseline marked `"provisional": true` arms nothing: the bench prints
//! the values a real baseline should carry (also emitted via
//! `--write-baseline`) and skips the hard failure. `--min-speedup X`
//! additionally fails the run if prepare at 4 workers is not `X`× faster
//! than serial — enforced only when the machine actually has ≥4 workers.

use pano_abr::allocate::{allocate_pareto, TileChoice};
use pano_abr::lookup::{LookupBuilder, LookupScheme};
use pano_arena::{lanes, Arena};
use pano_jnd::{ActionState, PspnrComputer};
use pano_sim::asset::{AssetConfig, PreparedVideo};
use pano_sim::experiments::effective_workers;
use pano_telemetry::Telemetry;
use pano_video::codec::{EncodedTile, QualityLevel, DISTORTION_QUANTILES};
use pano_video::{ChunkFeatures, FeatureExtractor, FeatureScratch, Genre, VideoSpec};
use std::hint::black_box;
use std::time::Instant;

/// Relative wall-clock regression tolerated before the gate fails.
const GATE_TOLERANCE: f64 = 0.20;
/// Iterations of the fused PMSE kernel; its wall clock doubles as the
/// machine-speed calibration for the baseline comparison.
const PMSE_ITERS: u64 = 2_000_000;
const ESTIMATE_ITERS: u64 = 1_000_000;
const PARETO_ITERS: u64 = 2_000;

fn spec() -> VideoSpec {
    VideoSpec::generate(0, Genre::Sports, 12.0, 42)
}

fn config(workers: usize, telemetry: Telemetry) -> AssetConfig {
    AssetConfig {
        workers: Some(workers),
        telemetry,
        ..AssetConfig::default()
    }
}

fn timed_prepare(workers: usize, telemetry: Telemetry) -> (f64, PreparedVideo) {
    let t0 = Instant::now();
    let prepared = PreparedVideo::prepare(&spec(), &config(workers, telemetry));
    (t0.elapsed().as_secs_f64(), prepared)
}

/// Fused PMSE spread over a sweep of JND thresholds; returns (total secs,
/// ns/op). The fixed workload also serves as the calibration figure.
fn bench_pmse_spread() -> (f64, f64) {
    let mut quantiles = DISTORTION_QUANTILES;
    for v in &mut quantiles {
        *v *= 6.0;
    }
    let t0 = Instant::now();
    let mut acc = 0.0;
    for i in 0..PMSE_ITERS {
        let jnd = 2.0 + (i & 63) as f64 * 0.4;
        acc += PspnrComputer::pmse_with_jnd_spread(black_box(&quantiles), black_box(jnd));
    }
    black_box(acc);
    let secs = t0.elapsed().as_secs_f64();
    (secs, secs * 1e9 / PMSE_ITERS as f64)
}

/// Batched PMSE spread on the requested kernel path (the lookup-build
/// inner loop); ns per (quantile-set, jnd) element.
fn bench_pmse_batch(use_lanes: bool) -> f64 {
    let mut quantiles = DISTORTION_QUANTILES;
    for v in &mut quantiles {
        *v *= 6.0;
    }
    const BATCH: usize = 64;
    let mut jnds = [0.0f64; BATCH];
    for (i, j) in jnds.iter_mut().enumerate() {
        *j = 2.0 + (i & 63) as f64 * 0.4;
    }
    let mut out = [0.0f64; BATCH];
    let iters = PMSE_ITERS / BATCH as u64;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..iters {
        if use_lanes {
            PspnrComputer::pmse_spread_batch_lanes(
                black_box(&quantiles),
                black_box(&jnds),
                &mut out,
            );
        } else {
            PspnrComputer::pmse_spread_batch_scalar(
                black_box(&quantiles),
                black_box(&jnds),
                &mut out,
            );
        }
        acc += out[0] + out[BATCH - 1];
    }
    black_box(acc);
    t0.elapsed().as_secs_f64() * 1e9 / (iters * BATCH as u64) as f64
}

/// Full power-law lookup build over the prepared video's borrowed
/// `(features, tiles)` pairs on the requested kernel path, with one
/// arena reused across builds; returns ms per build.
fn bench_lookup_build(prepared: &PreparedVideo, use_lanes: bool) -> f64 {
    let pairs: Vec<(&ChunkFeatures, &[EncodedTile])> = prepared
        .features
        .iter()
        .zip(prepared.pano_chunks.iter().map(|c| c.tiles.as_slice()))
        .collect();
    let builder = LookupBuilder::new(&prepared.computer);
    let mut arena = Arena::new();
    let t0 = Instant::now();
    let mut iters = 0u32;
    while iters < 3 || (t0.elapsed().as_secs_f64() < 0.2 && iters < 64) {
        black_box(builder.build_power_mode(black_box(&pairs), &mut arena, use_lanes));
        iters += 1;
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Feature extraction (the SceneInstant sampling kernel) on the requested
/// path, one scratch reused across chunks; ms per chunk.
fn bench_features(sp: &VideoSpec, use_lanes: bool) -> f64 {
    let scene = sp.scene();
    let extractor = FeatureExtractor::new(sp.resolution, AssetConfig::default().unit_grid);
    let mut scratch = FeatureScratch::default();
    let n_chunks = scene.duration_secs().ceil() as usize;
    let t0 = Instant::now();
    let mut iters = 0u32;
    while iters < 4 || (t0.elapsed().as_secs_f64() < 0.3 && iters < 64) {
        let k = iters as usize % n_chunks;
        black_box(extractor.extract_with_mode(&scene, sp.fps, k, 1.0, &mut scratch, use_lanes));
        iters += 1;
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Arena frame + alloc + touch round-trip; returns (ns/frame, stats).
fn bench_arena() -> (f64, pano_arena::ArenaStats) {
    const ITERS: u64 = 1_000_000;
    let mut arena = Arena::with_capacity(64);
    let t0 = Instant::now();
    let mut acc = 0.0;
    for i in 0..ITERS {
        let mut frame = arena.frame();
        let slot = frame.alloc(16);
        let buf = frame.get_mut(slot);
        buf[(i % 16) as usize] = i as f64;
        acc += frame.get(slot)[(i % 16) as usize];
    }
    black_box(acc);
    let ns = t0.elapsed().as_secs_f64() * 1e9 / ITERS as f64;
    (ns, arena.stats())
}

/// Online PSPNR estimates against the shipped power-law table; ns/op.
fn bench_online_estimate(prepared: &PreparedVideo) -> f64 {
    let levels: Vec<QualityLevel> = QualityLevel::all().collect();
    let n_chunks = prepared.pano_chunks.len();
    let t0 = Instant::now();
    let mut acc = 0.0;
    for i in 0..ESTIMATE_ITERS {
        let chunk = (i as usize) % n_chunks;
        let tile = (i as usize * 7) % prepared.pano_chunks[chunk].tiles.len();
        let level = levels[(i as usize) % levels.len()];
        let action = ActionState {
            rel_speed_deg_s: (i % 40) as f64,
            lum_change: ((i * 11) % 240) as f64,
            dof_diff: ((i % 20) as f64) * 0.1,
        };
        acc += prepared
            .lookup
            .estimate(chunk, tile, level, black_box(&action));
    }
    black_box(acc);
    t0.elapsed().as_secs_f64() * 1e9 / ESTIMATE_ITERS as f64
}

/// Pareto allocation over chunk 0's tiles across a sweep of budgets, with
/// the choices built exactly the way the client builds them; µs/op.
fn bench_pareto(prepared: &PreparedVideo) -> f64 {
    let tiles = &prepared.pano_chunks[0].tiles;
    let choices: Vec<TileChoice> = tiles
        .iter()
        .enumerate()
        .map(|(tile_idx, tile)| {
            let mut pmse = [0.0; 5];
            for l in QualityLevel::all() {
                let db =
                    prepared
                        .lookup
                        .estimate_at_ratio(0, tile_idx, l, 1.0 + tile_idx as f64 * 0.05);
                let rms = 255.0 / 10f64.powf(db / 20.0);
                pmse[l.0 as usize] = rms * rms;
            }
            for l in 1..5 {
                if pmse[l] > pmse[l - 1] {
                    pmse[l] = pmse[l - 1];
                }
            }
            TileChoice {
                size_bytes: tile.size_bytes,
                pmse,
                pixel_area: tile.pixel_area,
            }
        })
        .collect();
    let floor: u64 = choices.iter().map(|c| c.size_bytes[0]).sum();
    let ceil: u64 = choices.iter().map(|c| c.size_bytes[4]).sum();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..PARETO_ITERS {
        let budget = floor + (ceil - floor) * (i % 100) / 100;
        acc += allocate_pareto(black_box(&choices), black_box(budget)).total_bytes;
    }
    black_box(acc);
    t0.elapsed().as_secs_f64() * 1e6 / PARETO_ITERS as f64
}

/// The committed perf baseline this run is gated against.
#[derive(serde::Deserialize)]
struct Baseline {
    /// `true` until real numbers from the reference runner are committed;
    /// a provisional baseline reports instead of failing.
    #[serde(default)]
    provisional: bool,
    #[serde(default)]
    calibration_secs: f64,
    #[serde(default)]
    prepare_serial_secs: f64,
}

/// Outcome of the baseline comparison.
#[derive(Debug, PartialEq)]
enum Gate {
    /// No hard limit applied (provisional or degenerate baseline).
    Skipped(&'static str),
    /// Within the rescaled limit (secs).
    Pass(f64),
    /// Over the rescaled limit (secs).
    Fail(f64),
}

/// Compares a measured serial prepare against the baseline, rescaled by
/// the ratio of the two machines' calibration workloads.
fn gate(measured_serial: f64, measured_cal: f64, base: &Baseline, tol: f64) -> Gate {
    if base.provisional {
        return Gate::Skipped("baseline is provisional");
    }
    if base.calibration_secs <= 0.0 || base.prepare_serial_secs <= 0.0 {
        return Gate::Skipped("baseline has no measurements");
    }
    let scale = measured_cal / base.calibration_secs;
    let limit = base.prepare_serial_secs * scale * (1.0 + tol);
    if measured_serial > limit {
        Gate::Fail(limit)
    } else {
        Gate::Pass(limit)
    }
}

struct Args {
    out_path: String,
    baseline: Option<String>,
    min_speedup: Option<f64>,
    min_kernel_speedup: Option<f64>,
    write_baseline: Option<String>,
    trace: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Args {
    let mut args = Args {
        out_path: "BENCH_hotpath.json".to_string(),
        baseline: None,
        min_speedup: None,
        min_kernel_speedup: None,
        write_baseline: None,
        trace: false,
    };
    while let Some(a) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")),
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")
                        .parse()
                        .expect("--min-speedup takes a number"),
                )
            }
            "--min-kernel-speedup" => {
                args.min_kernel_speedup = Some(
                    value("--min-kernel-speedup")
                        .parse()
                        .expect("--min-kernel-speedup takes a number"),
                )
            }
            "--trace" => args.trace = true,
            _ => args.out_path = a,
        }
    }
    args
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let pool = effective_workers(None);
    let mut counts = vec![1usize, 2, 4, pool];
    counts.sort_unstable();
    counts.dedup();
    // One telemetry stream spans the whole bench: disabled (true zero
    // cost) unless `--trace` asked for span timelines.
    let run = pano_bench::bench_run("hotpath-bench", 42, args.trace);
    let tel = if args.trace {
        run.telemetry.clone()
    } else {
        Telemetry::disabled()
    };

    // Cold prepare per worker count, checking byte-identity throughout.
    let mut runs: Vec<(usize, f64)> = Vec::new();
    let mut reference_bytes: Option<Vec<u8>> = None;
    let mut last = None;
    for &w in &counts {
        let (secs, prepared) = timed_prepare(w, tel.clone());
        let bytes = prepared.artifact_bytes();
        match &reference_bytes {
            None => reference_bytes = Some(bytes),
            Some(r) => assert_eq!(
                *r, bytes,
                "prepared artefacts must be byte-identical at {w} workers"
            ),
        }
        println!("hotpath_bench: prepare @ {w:>2} workers: {secs:.3}s");
        runs.push((w, secs));
        last = Some(prepared);
    }
    let prepared = last.expect("at least one prepare ran");
    let serial_secs = runs[0].1;

    let lanes_enabled = lanes::enabled();
    let (calibration_secs, pmse_ns) = bench_pmse_spread();
    let pmse_batch_scalar_ns = bench_pmse_batch(false);
    let pmse_batch_lane_ns = bench_pmse_batch(true);
    let pmse_batch_speedup = pmse_batch_scalar_ns / pmse_batch_lane_ns.max(1e-9);
    let lookup_scalar_ms = bench_lookup_build(&prepared, false);
    let lookup_lane_ms = bench_lookup_build(&prepared, true);
    let lookup_speedup = lookup_scalar_ms / lookup_lane_ms.max(1e-9);
    let lookup_build_ms = if lanes_enabled {
        lookup_lane_ms
    } else {
        lookup_scalar_ms
    };
    let bench_spec = spec();
    let features_ms = bench_features(&bench_spec, lanes_enabled);
    let estimate_ns = bench_online_estimate(&prepared);
    let pareto_us = bench_pareto(&prepared);
    let (arena_frame_ns, arena_stats) = bench_arena();
    println!(
        "hotpath_bench: kernels (lanes {}): pmse_spread {pmse_ns:.1}ns, \
         pmse_batch scalar {pmse_batch_scalar_ns:.1}ns / lane {pmse_batch_lane_ns:.1}ns \
         (x{pmse_batch_speedup:.2}), lookup_build scalar {lookup_scalar_ms:.2}ms / \
         lane {lookup_lane_ms:.2}ms (x{lookup_speedup:.2}), features {features_ms:.2}ms/chunk, \
         estimate {estimate_ns:.1}ns, pareto {pareto_us:.1}us, arena_frame {arena_frame_ns:.1}ns",
        if lanes_enabled { "on" } else { "off" },
    );
    // The trace artifact lands before any gate can exit the process.
    if let Some(tp) = pano_bench::finish_run(&run) {
        println!("hotpath_bench: trace at {}", tp.display());
    }

    // Baseline regression gate.
    let gate_outcome = args.baseline.as_ref().map(|path| {
        let raw = std::fs::read(path).expect("read baseline file");
        let base: Baseline = serde_json::from_slice(&raw).expect("parse baseline file");
        let g = gate(serial_secs, calibration_secs, &base, GATE_TOLERANCE);
        match &g {
            Gate::Skipped(why) => {
                println!("hotpath_bench: gate skipped ({why})");
                if base.provisional {
                    println!(
                        "hotpath_bench: note: measure a real baseline on the reference runner \
                         via --write-baseline and commit it (provisional arms nothing)"
                    );
                }
            }
            Gate::Pass(limit) => {
                println!(
                    "hotpath_bench: gate pass (serial {serial_secs:.3}s <= limit {limit:.3}s)"
                );
                // A *measured* baseline with >3x headroom means the code got
                // substantially faster since it was recorded (not that the
                // baseline was never real): refresh it so the gate tracks
                // the improved hot path instead of the pre-optimization one.
                if serial_secs * 3.0 < *limit {
                    println!(
                        "hotpath_bench: note: measured baseline is stale (>3x headroom since \
                         it was recorded) — refresh it from this run's --write-baseline \
                         candidate and commit the result"
                    );
                }
            }
            Gate::Fail(limit) => println!(
                "hotpath_bench: REGRESSION: serial prepare {serial_secs:.3}s \
                 exceeds rescaled limit {limit:.3}s"
            ),
        }
        g
    });

    if let Some(path) = &args.write_baseline {
        let baseline = serde_json::json!({
            "provisional": false,
            "calibration_secs": calibration_secs,
            "prepare_serial_secs": serial_secs,
            "kernels": {
                "pmse_spread_ns": pmse_ns,
                "pmse_batch_lane_ns": pmse_batch_lane_ns,
                "lookup_build_ms": lookup_build_ms,
                "features_extract_ms": features_ms,
                "arena_frame_ns": arena_frame_ns,
            },
            "lanes_enabled": lanes_enabled,
            "note": "Reference-machine hotpath baseline; regenerate with \
                     hotpath_bench --write-baseline. Only calibration_secs and \
                     prepare_serial_secs arm the gate; kernels are informational.",
        });
        if let Err(err) = pano_telemetry::atomic_write(
            path,
            &serde_json::to_vec_pretty(&baseline).expect("serialise"),
        ) {
            eprintln!("error: failed to write baseline {path}: {err}");
            std::process::exit(1);
        }
        println!("hotpath_bench: wrote fresh baseline to {path}");
    }

    let report = serde_json::json!({
        "experiment": "hotpath",
        "video": {"genre": "Sports", "secs": 12.0, "seed": 42},
        "artifacts_identical": true,
        "prepare": runs.iter().map(|&(w, secs)| serde_json::json!({
            "workers": w,
            "wall_secs": secs,
            "speedup": serial_secs / secs.max(1e-9),
        })).collect::<Vec<_>>(),
        "lanes_enabled": lanes_enabled,
        "kernels": {
            "pmse_spread_ns": pmse_ns,
            "pmse_batch_scalar_ns": pmse_batch_scalar_ns,
            "pmse_batch_lane_ns": pmse_batch_lane_ns,
            "pmse_batch_speedup": pmse_batch_speedup,
            "lookup_build_ms": lookup_build_ms,
            "lookup_build_scalar_ms": lookup_scalar_ms,
            "lookup_build_lane_ms": lookup_lane_ms,
            "lookup_build_speedup": lookup_speedup,
            "features_extract_ms": features_ms,
            "online_estimate_ns": estimate_ns,
            "pareto_allocate_us": pareto_us,
            "arena_frame_ns": arena_frame_ns,
            "arena_high_water": arena_stats.high_water,
            "arena_grows": arena_stats.grows,
        },
        "calibration_secs": calibration_secs,
        "gate": match &gate_outcome {
            None => serde_json::json!({"checked": false}),
            Some(Gate::Skipped(why)) => serde_json::json!({"checked": false, "skipped": why}),
            Some(Gate::Pass(limit)) => serde_json::json!({"checked": true, "pass": true, "limit_secs": limit}),
            Some(Gate::Fail(limit)) => serde_json::json!({"checked": true, "pass": false, "limit_secs": limit}),
        },
    });
    if let Err(err) = pano_telemetry::atomic_write(
        &args.out_path,
        &serde_json::to_vec_pretty(&report).expect("serialise report"),
    ) {
        eprintln!("error: failed to write {}: {err}", args.out_path);
        std::process::exit(1);
    }
    println!("hotpath_bench: wrote {}", args.out_path);

    if matches!(gate_outcome, Some(Gate::Fail(_))) {
        std::process::exit(1);
    }
    if let Some(min) = args.min_kernel_speedup {
        // The lane-vs-scalar ratio is measured on this machine in this
        // process, so the gate is machine-independent: it fails only if
        // the vectorized kernels genuinely lost their edge.
        let mut failed = false;
        for (name, s) in [
            ("pmse_batch", pmse_batch_speedup),
            ("lookup_build", lookup_speedup),
        ] {
            if s < min {
                println!(
                    "hotpath_bench: KERNEL SPEEDUP SHORTFALL: {name} lane path \
                     x{s:.2} < required x{min:.2} over scalar"
                );
                failed = true;
            } else {
                println!("hotpath_bench: kernel {name} lane speedup x{s:.2} >= x{min:.2}");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
    if let Some(min) = args.min_speedup {
        let at4 = runs
            .iter()
            .find(|&&(w, _)| w == 4)
            .map(|&(_, secs)| serial_secs / secs.max(1e-9));
        match at4 {
            Some(s) if pool >= 4 && s < min => {
                println!(
                    "hotpath_bench: SPEEDUP SHORTFALL: x{s:.2} at 4 workers < required x{min:.2}"
                );
                std::process::exit(1);
            }
            Some(s) if pool >= 4 => {
                println!("hotpath_bench: speedup x{s:.2} at 4 workers >= x{min:.2}")
            }
            _ => println!("hotpath_bench: skipping --min-speedup: only {pool} hardware workers"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(provisional: bool, cal: f64, serial: f64) -> Baseline {
        Baseline {
            provisional,
            calibration_secs: cal,
            prepare_serial_secs: serial,
        }
    }

    #[test]
    fn provisional_baseline_never_fails() {
        let g = gate(1e9, 1.0, &base(true, 1.0, 0.001), GATE_TOLERANCE);
        assert_eq!(g, Gate::Skipped("baseline is provisional"));
    }

    #[test]
    fn degenerate_baseline_is_skipped() {
        let g = gate(1.0, 1.0, &base(false, 0.0, 0.0), GATE_TOLERANCE);
        assert_eq!(g, Gate::Skipped("baseline has no measurements"));
    }

    #[test]
    fn gate_rescales_by_calibration_ratio() {
        // Baseline machine: 10s prepare at 1s calibration. This machine
        // runs the calibration in 2s (half speed), so the limit is
        // 10 * 2 * 1.2 = 24s.
        let b = base(false, 1.0, 10.0);
        match gate(23.9, 2.0, &b, GATE_TOLERANCE) {
            Gate::Pass(limit) => assert!((limit - 24.0).abs() < 1e-9),
            other => panic!("expected pass, got {other:?}"),
        }
        match gate(24.1, 2.0, &b, GATE_TOLERANCE) {
            Gate::Fail(limit) => assert!((limit - 24.0).abs() < 1e-9),
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn within_tolerance_on_same_machine_passes() {
        let b = base(false, 1.0, 10.0);
        assert!(matches!(gate(11.9, 1.0, &b, GATE_TOLERANCE), Gate::Pass(_)));
        assert!(matches!(gate(12.1, 1.0, &b, GATE_TOLERANCE), Gate::Fail(_)));
    }

    #[test]
    fn baseline_parses_with_defaults() {
        let b: Baseline = serde_json::from_str(r#"{"note": "x"}"#).expect("parse");
        assert!(!b.provisional);
        assert_eq!(b.calibration_secs, 0.0);
    }

    #[test]
    fn args_parse_flags_and_positional() {
        let a = parse_args(
            [
                "out.json",
                "--baseline",
                "b.json",
                "--min-speedup",
                "2.0",
                "--min-kernel-speedup",
                "1.5",
                "--trace",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(a.out_path, "out.json");
        assert_eq!(a.baseline.as_deref(), Some("b.json"));
        assert_eq!(a.min_speedup, Some(2.0));
        assert_eq!(a.min_kernel_speedup, Some(1.5));
        assert!(a.write_baseline.is_none());
        assert!(a.trace);
    }
}
