//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                        # list experiments
//! repro all                    # run everything
//! repro fig15 fig18a           # run specific experiments
//! repro --experiment robust    # flag form of the same selection
//! repro --seed 7 fig4          # override the seed
//! repro --threads 4 fig15      # bound the sweep-grid worker pool
//! repro --fleet 10000          # 10k-session fleet on the event engine
//! repro --resume robust        # replay journaled cells after a crash
//! repro --quiet all            # suppress progress chatter
//! repro --json robust          # machine-readable progress on stdout
//! repro --all --trace          # run everything with span timelines
//! ```
//!
//! `--threads N` (or the `PANO_THREADS` env var) bounds the worker pool
//! every sweep grid fans out over; results are byte-identical for any
//! worker count, so use it purely to fit the machine.
//!
//! Checkpointed sweeps journal every completed cell under
//! `results/checkpoints/` (override with `PANO_CHECKPOINT_DIR`; set it
//! empty to disable). After an interruption — a crash, a kill, a power
//! cut — `repro --resume <id>` replays the journaled cells and computes
//! only the missing ones; the final artifacts are byte-identical to an
//! uninterrupted run at any worker count.
//!
//! Result files are written atomically (tmp + fsync + rename), so a
//! crash mid-write can never leave a torn `results/*.json` behind.
//!
//! Exit codes: `0` — every cell of every experiment completed; `3` —
//! finished, but at least one sweep cell panicked and was quarantined
//! (see the `sweep.cells.*` counters in the run report); `1` — an
//! experiment failed outright or an artifact could not be written;
//! `2` — usage error.
//!
//! Each run prints the rendered rows/series plus a telemetry run report,
//! and writes four artifacts under the workspace root:
//!
//! * `results/<id>.txt` / `results/<id>.json` — the rendered rows and the
//!   raw result value, as before;
//! * `results/telemetry/<run_id>.jsonl` — the structured event stream,
//!   every record stamped with the run id and seed;
//! * `results/telemetry/<run_id>.report.txt` — the rendered run report.
//!
//! With `--trace` the event stream additionally carries `span_begin` /
//! `span_end` records for every instrumented scope, and after each
//! experiment the stream is folded into
//! `results/telemetry/<run_id>.trace.json` — Chrome trace-event JSON,
//! loadable in `chrome://tracing`, Perfetto, or `pano-obs`. Every run
//! also ends with a `run_summary` event carrying the final metric
//! snapshot, the anchor record `pano-obs diff` uses to attribute drift
//! between two runs.

use pano_sim::experiments::{CHECKPOINT_DIR_ENV, RESUME_ENV};
use pano_telemetry::{atomic_write, Json, RunId, Telemetry};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// Renders a contained panic payload for the failure report.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// How progress is narrated: human lines, JSON events, or nothing.
/// Result artifacts are written to disk in every mode.
#[derive(Clone, Copy, PartialEq)]
enum Progress {
    Human,
    Json,
    Quiet,
}

impl Progress {
    /// Emits one progress event. In JSON mode every event is one object
    /// per line on stdout; in human mode `text` (when given) is printed;
    /// quiet mode drops everything.
    fn event(&self, kind: &str, fields: Json, text: Option<&str>) {
        match self {
            Progress::Quiet => {}
            Progress::Json => {
                let mut pairs = vec![("event".to_string(), Json::from(kind))];
                if let Json::Obj(map) = fields {
                    pairs.extend(map);
                }
                println!("{}", Json::Obj(pairs.into_iter().collect()));
            }
            Progress::Human => {
                if let Some(t) = text {
                    println!("{t}");
                }
            }
        }
    }
}

fn usage(registry: &[pano_bench::Experiment]) {
    println!(
        "Usage: repro [--seed N] [--threads N] [--fleet N] [--resume] [--trace] [--quiet] [--json] [--experiment ID] <experiment ...|--all|all>\n"
    );
    println!("Available experiments:");
    for e in registry {
        println!("  {:<8} {}", e.id, e.title);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut progress = Progress::Human;
    let mut selected_ids: Vec<String> = Vec::new();

    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        if pos < args.len() {
            seed = args.remove(pos).parse().unwrap_or_else(|_| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        args.remove(pos);
        if pos < args.len() {
            let n: usize = args.remove(pos).parse().unwrap_or_else(|_| {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            });
            if n == 0 {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
            // Experiment configs built by the registry leave `workers`
            // unset, so the env var reaches every sweep grid.
            std::env::set_var(pano_sim::experiments::THREADS_ENV, n.to_string());
        } else {
            eprintln!("--threads needs a positive integer");
            std::process::exit(2);
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--fleet") {
        args.remove(pos);
        if pos < args.len() {
            let n: usize = args.remove(pos).parse().unwrap_or_else(|_| {
                eprintln!("--fleet needs a positive session count");
                std::process::exit(2);
            });
            if n == 0 {
                eprintln!("--fleet needs a positive session count");
                std::process::exit(2);
            }
            std::env::set_var(pano_sim::experiments::FLEET_SESSIONS_ENV, n.to_string());
            // `repro --fleet 10000` alone is a complete invocation: the
            // flag both scales and selects the fleet experiment.
            selected_ids.push("fleet".to_string());
        } else {
            eprintln!("--fleet needs a positive session count");
            std::process::exit(2);
        }
    }
    while let Some(pos) = args.iter().position(|a| a == "--experiment") {
        args.remove(pos);
        if pos < args.len() {
            selected_ids.push(args.remove(pos));
        } else {
            eprintln!("--experiment needs an id");
            std::process::exit(2);
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--resume") {
        args.remove(pos);
        std::env::set_var(RESUME_ENV, "1");
    }
    let mut trace = false;
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        args.remove(pos);
        trace = true;
    }
    if let Some(pos) = args.iter().position(|a| a == "--all") {
        args.remove(pos);
        selected_ids.push("all".to_string());
    }
    if let Some(pos) = args.iter().position(|a| a == "--quiet") {
        args.remove(pos);
        progress = Progress::Quiet;
    }
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        progress = Progress::Json;
    }
    selected_ids.extend(args);
    // `--fleet N fleet` and friends select each experiment once.
    let mut seen: Vec<String> = Vec::new();
    selected_ids.retain(|id| {
        if seen.contains(id) {
            false
        } else {
            seen.push(id.clone());
            true
        }
    });

    let registry = pano_bench::experiments();
    if selected_ids.is_empty() {
        usage(&registry);
        return;
    }

    let selected: Vec<&pano_bench::Experiment> = if selected_ids.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        selected_ids
            .iter()
            .map(|id| {
                registry.iter().find(|e| e.id == *id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (run with no args to list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let out_dir = PathBuf::from("results");
    let tel_dir = out_dir.join("telemetry");
    if let Err(err) = fs::create_dir_all(&tel_dir) {
        eprintln!("error: cannot create {}: {err}", tel_dir.display());
        std::process::exit(1);
    }
    // Checkpointing is on by default for repro runs: sweeps journal
    // completed cells under results/checkpoints. Point the env var
    // elsewhere to move the journal, or set it empty to disable.
    if std::env::var_os(CHECKPOINT_DIR_ENV).is_none() {
        std::env::set_var(CHECKPOINT_DIR_ENV, out_dir.join("checkpoints"));
    }

    let mut fatal = false;
    let mut partial = false;
    for e in selected {
        let run_id = RunId::from_parts(e.id, seed);
        let jsonl_path = tel_dir.join(format!("{run_id}.jsonl"));
        // Telemetry must never take a reproduction run down: if the
        // artifact file cannot be created, fall back to aggregation-only.
        let tel = Telemetry::jsonl_traced(run_id, seed, &jsonl_path, trace).unwrap_or_else(|err| {
            eprintln!(
                "warning: no telemetry artifact at {}: {err}",
                jsonl_path.display()
            );
            Telemetry::recording(run_id, seed)
        });

        progress.event(
            "start",
            Json::obj([
                ("experiment", Json::from(e.id)),
                ("title", Json::from(e.title)),
                ("run_id", Json::from(run_id.to_string())),
                ("seed", Json::from(seed)),
            ]),
            Some(&format!(
                "=== {} — {} (run {run_id}, seed {seed})\n",
                e.id, e.title
            )),
        );
        tel.emit(
            "experiment_start",
            None,
            Json::obj([("id", Json::from(e.id)), ("title", Json::from(e.title))]),
        );

        let t0 = Instant::now();
        // The sweep grids already contain per-cell panics; this outer
        // net catches a driver that fails outside any grid, so one bad
        // experiment cannot take down the rest of an `all` run.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // pano-lint: allow(telemetry-name): e.id is a &'static str from the static EXPERIMENTS table — still greppable
            let _span = tel.span(e.id);
            (e.run)(seed, &tel)
        }));
        let secs = t0.elapsed().as_secs_f64();

        let (text, value) = match outcome {
            Ok(pair) => pair,
            Err(payload) => {
                let panic_msg = panic_text(payload.as_ref());
                fatal = true;
                tel.emit(
                    "experiment_failed",
                    None,
                    Json::obj([
                        ("id", Json::from(e.id)),
                        ("wall_secs", Json::from(secs)),
                        ("panic", Json::from(panic_msg.as_str())),
                    ]),
                );
                tel.emit("run_summary", None, tel.snapshot().to_json());
                tel.flush();
                progress.event(
                    "failed",
                    Json::obj([
                        ("experiment", Json::from(e.id)),
                        ("run_id", Json::from(run_id.to_string())),
                        ("wall_secs", Json::from(secs)),
                        ("panic", Json::from(panic_msg.as_str())),
                    ]),
                    Some(&format!(
                        "[{} FAILED after {secs:.2}s: {panic_msg}]\n",
                        e.id
                    )),
                );
                eprintln!("error: experiment {} panicked: {panic_msg}", e.id);
                continue;
            }
        };

        tel.emit(
            "experiment_end",
            None,
            Json::obj([("id", Json::from(e.id)), ("wall_secs", Json::from(secs))]),
        );
        // The final metric snapshot travels inside the stream itself so
        // a single JSONL file is a self-contained `pano-obs diff` input.
        tel.emit("run_summary", None, tel.snapshot().to_json());
        tel.flush();
        // Fold the flushed stream into a Chrome trace-event file. A
        // failure here degrades the artifact set, never the run.
        let trace_path = trace.then(|| tel_dir.join(format!("{run_id}.trace.json")));
        let trace_path = trace_path.filter(|tp| {
            match pano_telemetry::trace::write_chrome_trace(&jsonl_path, tp) {
                Ok(_) => true,
                Err(err) => {
                    eprintln!("warning: no trace artifact at {}: {err}", tp.display());
                    false
                }
            }
        });
        let report = tel.report(e.title).render();
        let quarantined = tel
            .snapshot()
            .counters
            .get("sweep.cells.quarantined")
            .copied()
            .unwrap_or(0);
        if quarantined > 0 {
            partial = true;
        }
        let status = if quarantined > 0 { "partial" } else { "ok" };

        let mut write_artifact = |path: &PathBuf, bytes: &[u8]| {
            if let Err(err) = atomic_write(path, bytes) {
                eprintln!("error: failed to write {}: {err}", path.display());
                fatal = true;
            }
        };
        write_artifact(&out_dir.join(format!("{}.txt", e.id)), text.as_bytes());
        write_artifact(
            &out_dir.join(format!("{}.json", e.id)),
            &serde_json::to_vec_pretty(&value).expect("serialise"),
        );
        let report_path = tel_dir.join(format!("{run_id}.report.txt"));
        write_artifact(&report_path, report.as_bytes());

        let mut finish_fields = vec![
            ("experiment", Json::from(e.id)),
            ("run_id", Json::from(run_id.to_string())),
            ("wall_secs", Json::from(secs)),
            ("status", Json::from(status)),
            ("quarantined_cells", Json::from(quarantined)),
            (
                "text_path",
                Json::from(out_dir.join(format!("{}.txt", e.id)).display().to_string()),
            ),
            (
                "json_path",
                Json::from(out_dir.join(format!("{}.json", e.id)).display().to_string()),
            ),
            (
                "telemetry_path",
                Json::from(jsonl_path.display().to_string()),
            ),
            ("report_path", Json::from(report_path.display().to_string())),
        ];
        if let Some(tp) = &trace_path {
            finish_fields.push(("trace_path", Json::from(tp.display().to_string())));
        }
        progress.event(
            "finish",
            Json::obj(finish_fields),
            Some(&format!(
                "{text}\n{report}\n[{} finished in {secs:.2}s, status {status}]\n",
                e.id
            )),
        );
        if quarantined > 0 {
            eprintln!(
                "warning: {} finished with {quarantined} quarantined cell(s); rows omitted",
                e.id
            );
        }
    }
    if fatal {
        std::process::exit(1);
    }
    if partial {
        std::process::exit(3);
    }
}
