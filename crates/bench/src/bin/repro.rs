//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                 # list experiments
//! repro all             # run everything
//! repro fig15 fig18a    # run specific experiments
//! repro --seed 7 fig4   # override the seed
//! ```
//!
//! Each run prints the rendered rows/series and writes
//! `results/<id>.txt` and `results/<id>.json` under the workspace root.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        if pos < args.len() {
            seed = args.remove(pos).parse().unwrap_or_else(|_| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        }
    }

    let registry = pano_bench::experiments();
    if args.is_empty() {
        println!("Usage: repro [--seed N] <experiment ...|all>\n");
        println!("Available experiments:");
        for e in &registry {
            println!("  {:<8} {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<&pano_bench::Experiment> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        args.iter()
            .map(|id| {
                registry.iter().find(|e| e.id == *id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (run with no args to list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let out_dir = PathBuf::from("results");
    fs::create_dir_all(&out_dir).expect("create results dir");

    for e in selected {
        println!("=== {} — {}\n", e.id, e.title);
        let t0 = Instant::now();
        let (text, value) = (e.run)(seed);
        println!("{text}");
        println!(
            "[{} finished in {:.2}s]\n",
            e.id,
            t0.elapsed().as_secs_f64()
        );
        fs::write(out_dir.join(format!("{}.txt", e.id)), &text).expect("write text result");
        fs::write(
            out_dir.join(format!("{}.json", e.id)),
            serde_json::to_vec_pretty(&value).expect("serialise"),
        )
        .expect("write json result");
    }
}
