//! `sweep_bench` — wall-clock benchmark of the sweep engine.
//!
//! Runs the Fig. 15 grid twice over the same cells — once on a single
//! worker, once on the machine's full pool — verifies the two runs
//! produce byte-identical JSON, and writes a `BENCH_sweep.json` artifact
//! with both wall-clocks and the asset-store hit/miss statistics.
//!
//! ```text
//! cargo run --release -p pano-bench --bin sweep_bench [-- out.json] [--trace]
//! ```
//!
//! With `--trace`, each timed run additionally streams span-traced
//! telemetry to `results/telemetry/<run_id>.jsonl` and folds it into a
//! Chrome trace next to it — see DESIGN.md §14.

use pano_bench::{bench_run, finish_run};
use pano_sim::experiments::{effective_workers, fig15};
use pano_telemetry::{atomic_write, Telemetry};
use pano_video::Genre;
use std::time::Instant;

fn config(workers: usize, telemetry: Telemetry) -> fig15::Fig15Config {
    fig15::Fig15Config {
        genres: vec![Genre::Sports, Genre::Documentary],
        videos_per_genre: 1,
        video_secs: 32.0,
        users_per_video: 2,
        buffer_targets: vec![1.0, 2.0],
        seed: 0xF15,
        workers: Some(workers),
        telemetry,
        ..fig15::Fig15Config::default()
    }
}

fn timed_run(workers: usize, trace: bool) -> (f64, Vec<u8>, pano_telemetry::Snapshot) {
    let run = bench_run(&format!("sweep-bench-{workers}w"), 0xF15, trace);
    let t0 = Instant::now();
    let r = fig15::run(&config(workers, run.telemetry.clone()));
    let secs = t0.elapsed().as_secs_f64();
    let bytes = serde_json::to_vec(&r).expect("serialise");
    let snap = run.telemetry.snapshot();
    if let Some(tp) = finish_run(&run) {
        println!("sweep_bench: trace at {}", tp.display());
    }
    (secs, bytes, snap)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = match args.iter().position(|a| a == "--trace") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    let out_path = args
        .into_iter()
        .next()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let pool = effective_workers(None);

    let (serial_secs, serial_bytes, serial_snap) = timed_run(1, trace);
    let (parallel_secs, parallel_bytes, parallel_snap) = timed_run(pool, trace);

    let identical = serial_bytes == parallel_bytes;
    assert!(
        identical,
        "sweep results must be byte-identical across worker counts"
    );

    let counter =
        |snap: &pano_telemetry::Snapshot, name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let build_secs = |snap: &pano_telemetry::Snapshot| {
        snap.histograms
            .get("sim.asset_store.build_secs")
            .map(|h| h.sum)
            .unwrap_or(0.0)
    };
    let report = serde_json::json!({
        "experiment": "fig15",
        "cells": 2 * 2 * 2 * fig15::Fig15Config::default().methods.len(),
        "json_identical": identical,
        "serial": {
            "workers": 1,
            "wall_secs": serial_secs,
            "store_hits": counter(&serial_snap, "sim.asset_store.hits"),
            "store_misses": counter(&serial_snap, "sim.asset_store.misses"),
            "store_build_secs": build_secs(&serial_snap),
        },
        "parallel": {
            "workers": pool,
            "wall_secs": parallel_secs,
            "store_hits": counter(&parallel_snap, "sim.asset_store.hits"),
            "store_misses": counter(&parallel_snap, "sim.asset_store.misses"),
            "store_build_secs": build_secs(&parallel_snap),
        },
        "speedup": serial_secs / parallel_secs.max(1e-9),
    });
    if let Err(err) = atomic_write(
        &out_path,
        &serde_json::to_vec_pretty(&report).expect("serialise report"),
    ) {
        eprintln!("error: failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    println!(
        "sweep_bench: fig15 grid serial {serial_secs:.2}s vs {pool} workers {parallel_secs:.2}s \
         (x{:.2}); results byte-identical; wrote {out_path}",
        serial_secs / parallel_secs.max(1e-9)
    );
}
