//! # pano-bench — the experiment and benchmark harness
//!
//! Two entry points:
//!
//! * the `repro` binary (`cargo run -p pano-bench --bin repro -- <exp>`)
//!   regenerates each of the paper's tables and figures as text, writing
//!   both the rendered rows and the raw JSON result next to them;
//! * Criterion benches (`cargo bench -p pano-bench`) measure the hot
//!   paths that back the §6.3/Fig. 17 overhead claims and the ablation
//!   benches DESIGN.md §4 calls out.
//!
//! The library part hosts the experiment registry shared by both.

#![forbid(unsafe_code)]

use pano_telemetry::Telemetry;
use serde::Serialize;
use std::path::PathBuf;

/// An experiment the `repro` binary can run.
pub struct Experiment {
    /// Command-line id, e.g. "fig15".
    pub id: &'static str,
    /// What the paper artefact shows.
    pub title: &'static str,
    /// Runs the experiment; returns (rendered text, JSON value). The
    /// telemetry handle stamps the run id/seed into every record; drivers
    /// that are instrumented thread it into their configs, the rest
    /// ignore it (pass [`Telemetry::disabled()`] for silent runs).
    pub run: fn(u64, &Telemetry) -> (String, serde_json::Value),
}

fn json<T: Serialize>(v: &T) -> serde_json::Value {
    serde_json::to_value(v).expect("experiment results serialise")
}

/// All reproducible artefacts, in paper order.
pub fn experiments() -> Vec<Experiment> {
    use pano_sim::experiments as exp;
    vec![
        Experiment {
            id: "fig3",
            title: "Fig.3: distributions of the new quality-determining factors",
            run: |seed, _tel| {
                let r = exp::fig3::run(8, 8, 40.0, seed);
                (exp::fig3::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig4",
            title: "Fig.4: video size vs tiling granularity",
            run: |seed, _tel| {
                let r = exp::fig4::run(10, 4.0, seed);
                (exp::fig4::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig6",
            title: "Fig.6/7: JND vs factors (simulated observer panel)",
            run: |seed, _tel| {
                let r = exp::fig6::run(20, seed);
                (exp::fig6::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig8",
            title: "Fig.8: MOS estimation accuracy of quality metrics",
            run: |seed, _tel| {
                let r = exp::fig8::run(21, 20, seed);
                (exp::fig8::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig9",
            title: "Fig.9: variable-size tiling pipeline",
            run: |seed, _tel| {
                let r = exp::fig9::run(seed);
                (exp::fig9::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig10",
            title: "Fig.10: conservative lower-bound speed estimation",
            run: |seed, _tel| {
                let r = exp::fig10::run(120.0, seed);
                (exp::fig10::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig13",
            title: "Fig.13: MOS by genre (survey simulation)",
            run: |seed, tel| {
                let cfg = exp::fig13::Fig13Config {
                    seed,
                    telemetry: tel.clone(),
                    ..exp::fig13::Fig13Config::default()
                };
                let r = exp::fig13::run(&cfg);
                (exp::fig13::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig15",
            title: "Fig.1/15: PSPNR vs buffering, methods x genres x traces",
            run: |seed, tel| {
                let cfg = exp::fig15::Fig15Config {
                    seed,
                    telemetry: tel.clone(),
                    ..exp::fig15::Fig15Config::default()
                };
                let r = exp::fig15::run(&cfg);
                (exp::fig15::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig16",
            title: "Fig.16: robustness to viewpoint/bandwidth prediction errors",
            run: |seed, tel| {
                let cfg = exp::fig16::Fig16Config {
                    seed,
                    telemetry: tel.clone(),
                    ..exp::fig16::Fig16Config::default()
                };
                let r = exp::fig16::run(&cfg);
                (exp::fig16::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig17",
            title: "Fig.17: system overheads",
            run: |seed, _tel| {
                let r = exp::fig17::run(30.0, seed);
                (exp::fig17::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig18a",
            title: "Fig.18a: component-wise bandwidth analysis",
            run: |seed, tel| {
                let cfg = exp::fig18::Fig18Config {
                    seed,
                    telemetry: tel.clone(),
                    ..exp::fig18::Fig18Config::default()
                };
                let r = exp::fig18::run(&cfg);
                (exp::fig18::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fig18b",
            title: "Fig.18b: bandwidth by genre at the quality target",
            run: |seed, tel| {
                let cfg = exp::fig18::Fig18Config {
                    seed,
                    telemetry: tel.clone(),
                    genres: vec![
                        pano_video::Genre::Documentary,
                        pano_video::Genre::Sports,
                        pano_video::Genre::Adventure,
                    ],
                    ..exp::fig18::Fig18Config::default()
                };
                let r = exp::fig18::run(&cfg);
                (exp::fig18::render(&r), json(&r))
            },
        },
        Experiment {
            id: "robust",
            title: "Robustness: QoE cliff under injected delivery faults",
            run: |seed, tel| {
                let cfg = exp::robustness::RobustnessConfig {
                    seed,
                    telemetry: tel.clone(),
                    ..exp::robustness::RobustnessConfig::default()
                };
                let r = exp::robustness::run(&cfg);
                (exp::robustness::render(&r), json(&r))
            },
        },
        Experiment {
            id: "fleet",
            title: "Fleet: N staggered sessions on one virtual-clock engine",
            run: |seed, tel| {
                let r = exp::fleet::run(seed, tel);
                (exp::fleet::render(&r), json(&r))
            },
        },
        Experiment {
            id: "table2",
            title: "Table 2: dataset summary",
            run: |seed, _tel| {
                let t = exp::tables::table2(seed);
                (exp::tables::render_table2(&t), json(&t))
            },
        },
        Experiment {
            id: "table3",
            title: "Table 3: PSPNR to MOS map",
            run: |_, _tel| {
                let t = exp::tables::table3();
                (exp::tables::render_table3(), json(&t))
            },
        },
        Experiment {
            id: "sec63",
            title: "Sec 6.3: lookup-table compression and PSPNR sampling",
            run: |seed, _tel| {
                let r = exp::tables::sec63(seed);
                (exp::tables::render_sec63(&r), json(&r))
            },
        },
    ]
}

/// Looks up one experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    experiments().into_iter().find(|e| e.id == id)
}

/// A bench run's telemetry plus the artifact path `--trace` adds.
///
/// Benches default to aggregation-only telemetry: zero files, near-zero
/// overhead. With `trace` the run instead gets a span-traced JSONL sink
/// under `results/telemetry/`, and [`finish_run`] folds the flushed
/// stream into Chrome trace-event JSON next to it.
pub struct BenchRun {
    pub telemetry: Telemetry,
    pub jsonl_path: Option<PathBuf>,
}

/// Builds telemetry for a bench run; span-traced to disk when asked.
/// Falls back to aggregation-only (with a warning) if the artifact file
/// cannot be created — telemetry must never take a bench down.
pub fn bench_run(label: &str, seed: u64, trace: bool) -> BenchRun {
    let run_id = pano_telemetry::RunId::from_parts(label, seed);
    if !trace {
        return BenchRun {
            telemetry: Telemetry::recording(run_id, seed),
            jsonl_path: None,
        };
    }
    let dir = PathBuf::from("results").join("telemetry");
    let path = dir.join(format!("{run_id}.jsonl"));
    let telemetry = std::fs::create_dir_all(&dir)
        .and_then(|()| Telemetry::jsonl_traced(run_id, seed, &path, true));
    match telemetry {
        Ok(telemetry) => BenchRun {
            telemetry,
            jsonl_path: Some(path),
        },
        Err(err) => {
            eprintln!(
                "warning: no telemetry artifact at {}: {err}",
                path.display()
            );
            BenchRun {
                telemetry: Telemetry::recording(run_id, seed),
                jsonl_path: None,
            }
        }
    }
}

/// Ends a bench run: emits the final `run_summary` event (the anchor
/// record `pano-obs diff` reads), flushes, and — when the run was traced
/// — folds the stream into `<run_id>.trace.json`. Returns the trace path
/// when one was written.
pub fn finish_run(run: &BenchRun) -> Option<PathBuf> {
    run.telemetry
        .emit("run_summary", None, run.telemetry.snapshot().to_json());
    run.telemetry.flush();
    let jsonl = run.jsonl_path.as_ref()?;
    let trace_path = jsonl.with_extension("trace.json");
    match pano_telemetry::trace::write_chrome_trace(jsonl, &trace_path) {
        Ok(_) => Some(trace_path),
        Err(err) => {
            eprintln!(
                "warning: no trace artifact at {}: {err}",
                trace_path.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = experiments().iter().map(|e| e.id).collect();
        for required in [
            "fig3", "fig4", "fig6", "fig8", "fig9", "fig10", "fig13", "fig15", "fig16", "fig17",
            "fig18a", "fig18b", "robust", "fleet", "table2", "table3", "sec63",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn find_works() {
        assert!(find("fig4").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn quick_experiments_produce_output() {
        // Only the cheap ones in unit tests; the heavy ones run in the
        // repro binary and integration tests.
        let tel = Telemetry::disabled();
        for id in ["fig4", "fig9", "table2", "table3"] {
            let e = find(id).expect("registered");
            let (text, value) = (e.run)(7, &tel);
            assert!(!text.is_empty(), "{id} rendered empty");
            assert!(!value.is_null(), "{id} json null");
        }
    }

    #[test]
    fn telemetry_handle_does_not_change_results() {
        let e = find("fig4").expect("registered");
        let (plain_text, plain_json) = (e.run)(3, &Telemetry::disabled());
        let tel = Telemetry::recording(pano_telemetry::RunId::from_parts("bench-test", 3), 3);
        let (tel_text, tel_json) = (e.run)(3, &tel);
        assert_eq!(plain_text, tel_text);
        assert_eq!(plain_json, tel_json);
    }
}
