//! Content-dependent JND: `C(i,j)` in the paper's Eq. 4.
//!
//! The paper computes the content term with the classic formulation from
//! the JND literature (Chou & Li '95, Chen & Guillemot '09): a viewer's
//! sensitivity to a pixel-level distortion depends on (a) the background
//! luminance — distortion hides in very dark and very bright regions — and
//! (b) spatial texture masking — distortion hides in busy regions. Both
//! effects are independent of viewpoint movement, which is exactly why the
//! paper can pre-compute `C` on the server.

use pano_video::CellFeatures;
use serde::{Deserialize, Serialize};

/// Parameters of the content-dependent JND model.
///
/// `C(luma, texture) = base(luma) + masking(texture)` where `base` is the
/// U-shaped luminance-adaptation curve and `masking` grows linearly with
/// texture activity. Grey levels throughout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentJnd {
    /// JND at grey level 0 (dark end of the U-curve).
    pub dark_jnd: f64,
    /// Minimum JND, reached at `mid_luma`.
    pub min_jnd: f64,
    /// Grey level where sensitivity peaks (JND minimal), ~127.
    pub mid_luma: f64,
    /// JND at grey level 255 (bright end).
    pub bright_jnd: f64,
    /// Texture masking slope: extra JND per unit of gradient energy.
    pub texture_slope: f64,
    /// Cap on the texture masking contribution.
    pub texture_cap: f64,
}

impl Default for ContentJnd {
    fn default() -> Self {
        // Calibrated to the Chou–Li luminance-adaptation shape: JND ≈ 17 at
        // black, ≈ 3 in the mid-greys, rising to ≈ 11 at white; texture
        // masking adds up to ~12 grey levels in the busiest blocks.
        ContentJnd {
            dark_jnd: 17.0,
            min_jnd: 3.0,
            mid_luma: 127.0,
            bright_jnd: 11.0,
            texture_slope: 0.35,
            texture_cap: 12.0,
        }
    }
}

impl ContentJnd {
    /// Luminance-adaptation component of the JND at background grey level
    /// `luma` — the non-monotonic U-curve: high in the dark, minimal in the
    /// mid-greys, rising again toward white.
    pub fn luminance_base(&self, luma: f64) -> f64 {
        let l = luma.clamp(0.0, 255.0);
        if l <= self.mid_luma {
            // Square-root fall from dark_jnd to min_jnd, the Chou–Li shape.
            let f = 1.0 - (l / self.mid_luma).sqrt();
            self.min_jnd + (self.dark_jnd - self.min_jnd) * f
        } else {
            // Linear rise toward the bright end.
            let f = (l - self.mid_luma) / (255.0 - self.mid_luma);
            self.min_jnd + (self.bright_jnd - self.min_jnd) * f
        }
    }

    /// Texture-masking component for a region with the given gradient
    /// energy / texture amplitude.
    pub fn texture_masking(&self, texture: f64) -> f64 {
        (self.texture_slope * texture.max(0.0)).min(self.texture_cap)
    }

    /// Full content-dependent JND of a region.
    pub fn jnd(&self, luma: f64, texture: f64) -> f64 {
        self.luminance_base(luma) + self.texture_masking(texture)
    }

    /// Content JND of a cell from its extracted features.
    pub fn jnd_for_cell(&self, cell: &CellFeatures) -> f64 {
        self.jnd(cell.luminance, cell.texture)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u_shape_of_luminance_adaptation() {
        let c = ContentJnd::default();
        let dark = c.luminance_base(0.0);
        let mid = c.luminance_base(127.0);
        let bright = c.luminance_base(255.0);
        assert!(dark > mid, "dark {dark} vs mid {mid}");
        assert!(bright > mid, "bright {bright} vs mid {mid}");
        assert_eq!(dark, 17.0);
        assert_eq!(bright, 11.0);
        assert!((mid - 3.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_on_each_side_of_the_minimum() {
        let c = ContentJnd::default();
        let mut prev = c.luminance_base(0.0);
        for l in 1..=127 {
            let v = c.luminance_base(l as f64);
            assert!(v <= prev + 1e-12, "not decreasing at {l}");
            prev = v;
        }
        let mut prev = c.luminance_base(127.0);
        for l in 128..=255 {
            let v = c.luminance_base(l as f64);
            assert!(v >= prev - 1e-12, "not increasing at {l}");
            prev = v;
        }
    }

    #[test]
    fn texture_masking_grows_then_caps() {
        let c = ContentJnd::default();
        assert_eq!(c.texture_masking(0.0), 0.0);
        assert!(c.texture_masking(10.0) > c.texture_masking(5.0));
        assert_eq!(c.texture_masking(1000.0), c.texture_cap);
        // Negative texture (shouldn't happen, but) clamps to zero.
        assert_eq!(c.texture_masking(-5.0), 0.0);
    }

    #[test]
    fn busy_dark_region_has_highest_jnd() {
        let c = ContentJnd::default();
        let flat_mid = c.jnd(127.0, 0.0);
        let busy_dark = c.jnd(10.0, 40.0);
        assert!(busy_dark > 3.0 * flat_mid);
    }

    #[test]
    fn jnd_for_cell_uses_features() {
        let c = ContentJnd::default();
        let cell = CellFeatures {
            luminance: 127.0,
            texture: 20.0,
            dof_dioptre: 0.0,
            content_speed: 0.0,
            object_id: None,
        };
        assert!((c.jnd_for_cell(&cell) - (3.0 + 7.0)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_jnd_positive_and_bounded(luma in 0.0f64..=255.0, tex in 0.0f64..100.0) {
            let c = ContentJnd::default();
            let j = c.jnd(luma, tex);
            prop_assert!(j >= c.min_jnd);
            prop_assert!(j <= c.dark_jnd + c.texture_cap);
        }

        #[test]
        fn prop_out_of_range_luma_clamps(luma in -500.0f64..500.0) {
            let c = ContentJnd::default();
            let j = c.luminance_base(luma);
            prop_assert!(j.is_finite());
            prop_assert!(j >= c.min_jnd && j <= c.dark_jnd);
        }
    }
}
