//! Simulated observer panel: the Appendix A user study, in silico.
//!
//! The paper measured its JND multipliers with a 20-participant study:
//! each participant watched a synthetic 360° stimulus — a 64×64-pixel
//! grey-level-50 square over a controlled background — while one factor
//! (relative viewpoint speed, 5-s luminance change, or DoF difference)
//! was held at a chosen value. A distortion of magnitude Δ was added to a
//! random 50 % of the square's pixels and increased from 1 upward until
//! the participant reported seeing it; that first-noticed Δ is the
//! participant's JND for the condition, and the panel JND is the mean
//! across participants.
//!
//! Our substitute gives each [`Observer`] a ground-truth perception law —
//! the content JND of the stimulus scaled by the same parametric
//! multipliers, times a per-observer sensitivity factor — plus trial noise
//! and a report latency of a few staircase steps. Running the staircase
//! against these observers reproduces the measurement pipeline, so the
//! Fig. 6 / Fig. 7 experiments are *measurements* (with observer noise)
//! rather than echoes of the model constants.

use crate::content::ContentJnd;
use crate::multipliers::{ActionState, Multipliers};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Grey level of the Appendix A foreground square.
pub const STIMULUS_LUMA: f64 = 50.0;
/// Maximum distortion magnitude probed by the staircase (Appendix A).
pub const STAIRCASE_MAX_DELTA: u32 = 205;

/// A single simulated participant.
#[derive(Debug, Clone)]
pub struct Observer {
    /// Multiplicative sensitivity: 1.0 is the population mean; higher
    /// means less sensitive (higher personal JND).
    pub sensitivity_factor: f64,
    /// Std-dev of multiplicative per-trial noise.
    pub trial_noise_sd: f64,
    /// Mean number of extra staircase steps before the observer reports
    /// (reaction lag; the paper notes reports within ~3 s).
    pub report_lag_steps: f64,
    rng: StdRng,
}

impl Observer {
    /// Creates observer `id` from panel seed `seed`. Sensitivity factors
    /// are log-spread around 1 (σ ≈ 0.18), matching the across-subject
    /// spread typical of JND studies.
    pub fn new(seed: u64, id: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ ((id as u64) << 17) ^ 0x0B5E);
        // Log-normal-ish via exp of a uniform-sum approximation.
        let z: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() * 0.9;
        Observer {
            sensitivity_factor: (0.18 * z).exp(),
            trial_noise_sd: 0.08,
            report_lag_steps: 1.5,
            rng,
        }
    }

    /// The observer's ground-truth JND for the stimulus under `action`:
    /// content JND of the grey-50 flat square, times the action ratio,
    /// times the personal sensitivity factor.
    pub fn true_jnd(
        &self,
        content: &ContentJnd,
        multipliers: &Multipliers,
        action: &ActionState,
    ) -> f64 {
        content.jnd(STIMULUS_LUMA, 0.0) * multipliers.action_ratio(action) * self.sensitivity_factor
    }

    /// Runs one Appendix-A staircase trial: Δ increases from 1 until the
    /// observer notices. Returns the first-noticed Δ, or
    /// [`STAIRCASE_MAX_DELTA`] if nothing was ever noticed.
    pub fn staircase_trial(
        &mut self,
        content: &ContentJnd,
        multipliers: &Multipliers,
        action: &ActionState,
    ) -> u32 {
        let base = self.true_jnd(content, multipliers, action);
        // Per-trial threshold wobble.
        let noise: f64 = 1.0 + self.rng.gen_range(-1.0..1.0) * self.trial_noise_sd;
        let threshold = base * noise;
        // Reaction lag: a few extra steps after the threshold is crossed.
        let lag = self.rng.gen_range(0.0..(2.0 * self.report_lag_steps));
        let reported = threshold + lag;
        (reported.ceil() as u32).clamp(1, STAIRCASE_MAX_DELTA)
    }
}

/// Outcome of a panel condition: the measured JND for one action state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaircaseOutcome {
    /// The action state tested.
    pub action: ActionState,
    /// Mean first-noticed Δ across the panel — the measured JND.
    pub mean_jnd: f64,
    /// Standard deviation across participants.
    pub sd: f64,
}

/// A panel of simulated observers plus the ground-truth perception laws.
#[derive(Debug, Clone)]
pub struct Panel {
    observers: Vec<Observer>,
    content: ContentJnd,
    multipliers: Multipliers,
}

impl Panel {
    /// The paper's panel size.
    pub const PAPER_SIZE: usize = 20;

    /// Creates a panel of `n` observers with the default perception laws.
    pub fn new(n: usize, seed: u64) -> Self {
        Panel {
            observers: (0..n as u32).map(|i| Observer::new(seed, i)).collect(),
            content: ContentJnd::default(),
            multipliers: Multipliers::default(),
        }
    }

    /// Number of observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Whether the panel is empty.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// The ground-truth multiplier laws the observers embody.
    pub fn multipliers(&self) -> &Multipliers {
        &self.multipliers
    }

    /// The content-JND law the observers embody.
    pub fn content(&self) -> &ContentJnd {
        &self.content
    }

    /// Measures the panel JND for one action state (one Appendix-A test
    /// video).
    pub fn measure(&mut self, action: &ActionState) -> StaircaseOutcome {
        assert!(!self.observers.is_empty(), "panel must not be empty");
        let (content, multipliers) = (self.content, self.multipliers);
        let deltas: Vec<f64> = self
            .observers
            .iter_mut()
            .map(|o| o.staircase_trial(&content, &multipliers, action) as f64)
            .collect();
        let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
        StaircaseOutcome {
            action: *action,
            mean_jnd: mean,
            sd: var.sqrt(),
        }
    }

    /// Sweeps one factor while holding the others at zero — the Fig. 6
    /// experiment. `values` are the factor levels; `make_action` places
    /// each level into an [`ActionState`].
    pub fn sweep<F>(&mut self, values: &[f64], make_action: F) -> Vec<StaircaseOutcome>
    where
        F: Fn(f64) -> ActionState,
    {
        values
            .iter()
            .map(|&v| self.measure(&make_action(v)))
            .collect()
    }

    /// Measures the empirical multiplier curve for a factor: JND at each
    /// value divided by JND at the factor's zero (both measured). This is
    /// how the paper derives `Fv`, `Fl`, `Fd` from the study data.
    pub fn empirical_multiplier<F>(&mut self, values: &[f64], make_action: F) -> Vec<(f64, f64)>
    where
        F: Fn(f64) -> ActionState,
    {
        let base = self.measure(&make_action(0.0)).mean_jnd;
        values
            .iter()
            .map(|&v| (v, self.measure(&make_action(v)).mean_jnd / base))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_action(v: f64) -> ActionState {
        ActionState {
            rel_speed_deg_s: v,
            ..ActionState::REST
        }
    }

    #[test]
    fn panel_has_paper_size() {
        let p = Panel::new(Panel::PAPER_SIZE, 1);
        assert_eq!(p.len(), 20);
        assert!(!p.is_empty());
    }

    #[test]
    fn observer_sensitivities_spread_around_one() {
        let p = Panel::new(200, 3);
        let mean: f64 = p
            .observers
            .iter()
            .map(|o| o.sensitivity_factor)
            .sum::<f64>()
            / 200.0;
        assert!((mean - 1.0).abs() < 0.05, "mean sensitivity {mean}");
        for o in &p.observers {
            assert!(o.sensitivity_factor > 0.5 && o.sensitivity_factor < 2.0);
        }
    }

    #[test]
    fn staircase_reports_near_true_jnd() {
        let mut p = Panel::new(50, 9);
        let rest = p.measure(&ActionState::REST);
        // True rest JND of the grey-50 stimulus under the default law.
        let truth = ContentJnd::default().jnd(STIMULUS_LUMA, 0.0);
        assert!(
            (rest.mean_jnd - truth).abs() < truth * 0.4 + 2.0,
            "measured {} vs truth {truth}",
            rest.mean_jnd
        );
        assert!(rest.sd > 0.0, "observers should disagree a little");
    }

    #[test]
    fn measured_jnd_rises_with_speed() {
        let mut p = Panel::new(Panel::PAPER_SIZE, 5);
        let outcomes = p.sweep(&[0.0, 5.0, 10.0, 20.0], speed_action);
        for w in outcomes.windows(2) {
            assert!(
                w[1].mean_jnd >= w[0].mean_jnd - 1.0,
                "JND should rise with speed: {:?}",
                outcomes
            );
        }
        // At 20 deg/s the JND is clearly above rest.
        assert!(outcomes[3].mean_jnd > outcomes[0].mean_jnd * 1.5);
    }

    #[test]
    fn empirical_multiplier_matches_ground_truth_law() {
        let mut p = Panel::new(100, 13);
        let truth = *p.multipliers();
        let curve = p.empirical_multiplier(&[5.0, 10.0, 20.0], speed_action);
        for (v, measured) in curve {
            let expected = truth.f_speed(v);
            assert!(
                (measured - expected).abs() < 0.35,
                "v={v}: measured {measured} vs law {expected}"
            );
        }
    }

    #[test]
    fn joint_factors_multiply() {
        // The Fig. 7 check: measured JND under two non-zero factors is
        // close to base JND times the product of the two multipliers.
        let mut p = Panel::new(100, 21);
        let truth = *p.multipliers();
        let base = p.measure(&ActionState::REST).mean_jnd;
        let joint = p
            .measure(&ActionState {
                rel_speed_deg_s: 10.0,
                dof_diff: 1.0,
                lum_change: 0.0,
            })
            .mean_jnd;
        let expected = base * truth.f_speed(10.0) * truth.f_dof(1.0);
        assert!(
            (joint - expected).abs() / expected < 0.2,
            "joint {joint} vs {expected}"
        );
    }

    #[test]
    fn trials_clamp_to_staircase_range() {
        let mut p = Panel::new(20, 31);
        // An absurdly masked condition: multiplier caps push the threshold
        // far above the staircase maximum.
        let extreme = ActionState {
            rel_speed_deg_s: 1e6,
            lum_change: 1e6,
            dof_diff: 1e6,
        };
        let o = p.measure(&extreme);
        assert!(o.mean_jnd <= STAIRCASE_MAX_DELTA as f64);
    }

    #[test]
    fn panel_is_deterministic() {
        let mut a = Panel::new(20, 77);
        let mut b = Panel::new(20, 77);
        assert_eq!(
            a.measure(&speed_action(10.0)),
            b.measure(&speed_action(10.0))
        );
    }

    #[test]
    #[should_panic(expected = "panel must not be empty")]
    fn empty_panel_panics_on_measure() {
        Panel::new(0, 0).measure(&ActionState::REST);
    }
}

/// A power-law multiplier curve fitted from panel measurements:
/// `F(x) = 1 + gain · (x / anchor)^exponent` — the parametric family the
/// ground-truth laws use, recovered from staircase data. This closes the
/// paper's Fig. 6 loop: run the study, fit the curve, and use the fit in
/// the streaming system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedCurve {
    /// Anchor the fit is expressed against (e.g. 10 deg/s).
    pub anchor: f64,
    /// Gain at the anchor (`F(anchor) = 1 + gain`).
    pub gain: f64,
    /// Curve exponent.
    pub exponent: f64,
    /// Root-mean-square residual of the fit on the multiplier scale.
    pub rmse: f64,
}

impl FittedCurve {
    /// Evaluates the fitted multiplier at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        1.0 + self.gain * (x / self.anchor).powf(self.exponent)
    }
}

/// Fits a power-law multiplier curve to `(factor value, measured
/// multiplier)` points by grid search over the exponent with a
/// closed-form least-squares gain at each candidate.
///
/// Points at `x <= 0` (the rest condition) are ignored — the family is
/// pinned to `F(0) = 1`. Panics if fewer than two positive-`x` points
/// remain.
pub fn fit_multiplier(points: &[(f64, f64)], anchor: f64) -> FittedCurve {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, _)| *x > 0.0)
        .map(|&(x, m)| (x, m))
        .collect();
    assert!(
        usable.len() >= 2,
        "need at least two non-zero factor measurements"
    );
    let mut best = FittedCurve {
        anchor,
        gain: 0.5,
        exponent: 1.0,
        rmse: f64::INFINITY,
    };
    let mut e = 0.3f64;
    while e <= 3.0 {
        // Closed-form least squares for the gain at this exponent:
        // minimise Σ (1 + g·b_i − m_i)² with b_i = (x_i/anchor)^e.
        let mut num = 0.0;
        let mut den = 0.0;
        for &(x, m) in &usable {
            let b = (x / anchor).powf(e);
            num += b * (m - 1.0);
            den += b * b;
        }
        if den > 1e-12 {
            let g = num / den;
            let rmse = (usable
                .iter()
                .map(|&(x, m)| {
                    let f = 1.0 + g * (x / anchor).powf(e);
                    (f - m) * (f - m)
                })
                .sum::<f64>()
                / usable.len() as f64)
                .sqrt();
            if rmse < best.rmse {
                best = FittedCurve {
                    anchor,
                    gain: g,
                    exponent: e,
                    rmse,
                };
            }
        }
        e += 0.02;
    }
    best
}

#[cfg(test)]
mod fit_tests {
    use super::*;
    use crate::multipliers::Multipliers;

    #[test]
    fn recovers_a_known_power_law_exactly() {
        // Synthesise points from the true speed law and recover it.
        let truth = Multipliers::default();
        let points: Vec<(f64, f64)> = [2.0, 5.0, 8.0, 12.0, 16.0]
            .iter()
            .map(|&x| (x, truth.f_speed(x)))
            .collect();
        let fit = fit_multiplier(&points, truth.speed_anchor);
        assert!(fit.rmse < 0.01, "rmse {}", fit.rmse);
        assert!((fit.gain - 0.5).abs() < 0.05, "gain {}", fit.gain);
        assert!(
            (fit.exponent - truth.speed_exp).abs() < 0.1,
            "exponent {}",
            fit.exponent
        );
    }

    #[test]
    fn panel_measurements_round_trip_into_a_usable_fit() {
        // Study → empirical multipliers → fit → the fitted curve must
        // agree with the ground-truth law within panel noise.
        let mut panel = Panel::new(60, 7);
        let truth = *panel.multipliers();
        let points = panel.empirical_multiplier(&[3.0, 6.0, 10.0, 15.0, 20.0], |v| ActionState {
            rel_speed_deg_s: v,
            ..ActionState::REST
        });
        let fit = fit_multiplier(&points, truth.speed_anchor);
        for v in [5.0, 10.0, 18.0] {
            let f = fit.eval(v);
            let t = truth.f_speed(v);
            assert!(
                (f - t).abs() < 0.35,
                "v={v}: fitted {f:.2} vs law {t:.2} (rmse {:.3})",
                fit.rmse
            );
        }
    }

    #[test]
    fn eval_is_identity_at_zero() {
        let fit = fit_multiplier(&[(5.0, 1.3), (10.0, 1.6)], 10.0);
        assert_eq!(fit.eval(0.0), 1.0);
        assert_eq!(fit.eval(-3.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_points_panics() {
        fit_multiplier(&[(0.0, 1.0), (5.0, 1.2)], 10.0);
    }
}
