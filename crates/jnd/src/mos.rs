//! PSPNR ↔ MOS mapping and a simulated rater.
//!
//! The paper's Table 3 maps 360JND-based PSPNR bands to mean-opinion-score
//! values on the standard 1–5 scale, and §8.2 uses that map to translate
//! trace-driven PSPNR results into user ratings. [`mos_from_pspnr`] is the
//! table; [`mos_to_scale`] is a continuous (piecewise-linear) version used
//! where a differentiable score is more convenient; [`Rater`] adds per-user
//! bias and quantisation noise so survey-style experiments (Fig. 8,
//! Fig. 13) can simulate a rating panel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Table 3 of the paper: discrete MOS from PSPNR bands.
///
/// | PSPNR (dB) | ≤45 | 46–53 | 54–61 | 62–69 | ≥70 |
/// |------------|-----|-------|-------|-------|-----|
/// | MOS        | 1   | 2     | 3     | 4     | 5   |
pub fn mos_from_pspnr(pspnr_db: f64) -> u8 {
    if pspnr_db < 46.0 {
        1
    } else if pspnr_db < 54.0 {
        2
    } else if pspnr_db < 62.0 {
        3
    } else if pspnr_db < 70.0 {
        4
    } else {
        5
    }
}

/// Continuous MOS on `[1, 5]`: piecewise-linear through the band centres
/// of Table 3 (41.5 → 1, 49.5 → 2, 57.5 → 3, 65.5 → 4, 73.5 → 5), clamped.
pub fn mos_to_scale(pspnr_db: f64) -> f64 {
    const LO: f64 = 41.5;
    const STEP: f64 = 8.0;
    (1.0 + (pspnr_db - LO) / STEP).clamp(1.0, 5.0)
}

/// A simulated survey participant: rates a video from its "true" continuous
/// MOS with a personal bias and quantisation to the 1–5 scale.
#[derive(Debug, Clone)]
pub struct Rater {
    /// Persistent per-rater offset on the continuous scale.
    pub bias: f64,
    /// Std-dev of the per-rating noise.
    pub noise_sd: f64,
    rng: StdRng,
}

impl Rater {
    /// Creates rater `rater_id` of a panel seeded with `seed`. Biases are
    /// deterministic per `(seed, rater_id)` and spread in ±0.5.
    pub fn new(seed: u64, rater_id: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ ((rater_id as u64) << 24) ^ 0x5EED);
        let bias = rng.gen_range(-0.5..0.5);
        Rater {
            bias,
            noise_sd: 0.35,
            rng,
        }
    }

    /// Rates a stimulus with the given true continuous MOS, returning a
    /// 1–5 integer score.
    pub fn rate(&mut self, true_mos: f64) -> u8 {
        // Box–Muller standard normal from two uniforms.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let noisy = true_mos + self.bias + z * self.noise_sd;
        noisy.round().clamp(1.0, 5.0) as u8
    }

    /// Rates a stimulus given its PSPNR, going through the Table 3 scale.
    pub fn rate_pspnr(&mut self, pspnr_db: f64) -> u8 {
        let m = mos_to_scale(pspnr_db);
        self.rate(m)
    }
}

/// Mean opinion score of a set of ratings.
pub fn mean_opinion(ratings: &[u8]) -> f64 {
    if ratings.is_empty() {
        return 0.0;
    }
    ratings.iter().map(|&r| r as f64).sum::<f64>() / ratings.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table3_band_edges() {
        assert_eq!(mos_from_pspnr(45.0), 1);
        assert_eq!(mos_from_pspnr(45.9), 1);
        assert_eq!(mos_from_pspnr(46.0), 2);
        assert_eq!(mos_from_pspnr(53.9), 2);
        assert_eq!(mos_from_pspnr(54.0), 3);
        assert_eq!(mos_from_pspnr(61.9), 3);
        assert_eq!(mos_from_pspnr(62.0), 4);
        assert_eq!(mos_from_pspnr(69.9), 4);
        assert_eq!(mos_from_pspnr(70.0), 5);
        assert_eq!(mos_from_pspnr(100.0), 5);
        assert_eq!(mos_from_pspnr(0.0), 1);
    }

    #[test]
    fn continuous_scale_hits_band_centres() {
        assert!((mos_to_scale(41.5) - 1.0).abs() < 1e-9);
        assert!((mos_to_scale(57.5) - 3.0).abs() < 1e-9);
        assert!((mos_to_scale(73.5) - 5.0).abs() < 1e-9);
        assert_eq!(mos_to_scale(0.0), 1.0);
        assert_eq!(mos_to_scale(200.0), 5.0);
    }

    #[test]
    fn continuous_and_discrete_agree() {
        for db in 30..95 {
            let d = mos_from_pspnr(db as f64);
            let c = mos_to_scale(db as f64);
            assert!(
                (c - d as f64).abs() <= 1.0,
                "db={db} discrete={d} continuous={c}"
            );
        }
    }

    #[test]
    fn rater_is_deterministic_per_seed() {
        let mut a = Rater::new(7, 3);
        let mut b = Rater::new(7, 3);
        let ra: Vec<u8> = (0..10).map(|_| a.rate(3.0)).collect();
        let rb: Vec<u8> = (0..10).map(|_| b.rate(3.0)).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn rater_tracks_true_mos_on_average() {
        let mut panel: Vec<Rater> = (0..40).map(|i| Rater::new(11, i)).collect();
        for target in [1.5f64, 3.0, 4.5] {
            let ratings: Vec<u8> = panel.iter_mut().map(|r| r.rate(target)).collect();
            let mean = mean_opinion(&ratings);
            assert!(
                (mean - target).abs() < 0.4,
                "target {target} got mean {mean}"
            );
        }
    }

    #[test]
    fn mean_opinion_basics() {
        assert_eq!(mean_opinion(&[]), 0.0);
        assert_eq!(mean_opinion(&[3]), 3.0);
        assert_eq!(mean_opinion(&[1, 5]), 3.0);
    }

    proptest! {
        #[test]
        fn prop_ratings_in_range(seed in 0u64..100, mos in -2.0f64..8.0) {
            let mut r = Rater::new(seed, 0);
            let score = r.rate(mos);
            prop_assert!((1..=5).contains(&score));
        }

        #[test]
        fn prop_scale_monotone(a in 0.0f64..120.0, b in 0.0f64..120.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(mos_to_scale(lo) <= mos_to_scale(hi));
            prop_assert!(mos_from_pspnr(lo) <= mos_from_pspnr(hi));
        }
    }
}
