//! The three action-dependent JND multipliers: `Fv`, `Fl`, `Fd`.
//!
//! Each multiplier is the ratio between the JND under a non-zero value of
//! one viewpoint-driven factor and the JND at rest (paper §4.2). They are
//! monotone non-decreasing, equal to 1 at zero, and — per the paper's key
//! empirical finding — mutually independent, so the combined
//! *action-dependent ratio* is their product.
//!
//! **Calibration.** The paper publishes the multipliers as measured curves
//! (Fig. 6), not equations. We use saturating power laws anchored on the
//! quantitative statements in §2.3: a viewpoint speed of 10 deg/s, a 5-s
//! luminance change of 200 grey levels, and a DoF difference of 0.7
//! dioptres each let users "tolerate 50 % more quality distortion", i.e.
//! each anchor maps to a multiplier of 1.5. Curvature and saturation are
//! chosen to match the Fig. 6 shapes (speed saturating by ~20 deg/s, DoF
//! rising steeply past 1 dioptre). The simulated observer panel in
//! [`crate::panel`] *re-measures* these laws through the Appendix A
//! protocol, closing the loop the way the paper's user study did.

use serde::{Deserialize, Serialize};

/// The viewpoint-action state that drives the JND multipliers for a region.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ActionState {
    /// Relative viewpoint-moving speed for the region, deg/s: the speed of
    /// the region's content relative to the moving viewpoint.
    pub rel_speed_deg_s: f64,
    /// Magnitude of the viewport luminance change over the last 5 s, grey
    /// levels.
    pub lum_change: f64,
    /// Absolute DoF difference between the region and the
    /// viewpoint-focused content, dioptres.
    pub dof_diff: f64,
}

impl ActionState {
    /// The at-rest state: all three factors zero, multiplier 1.
    pub const REST: ActionState = ActionState {
        rel_speed_deg_s: 0.0,
        lum_change: 0.0,
        dof_diff: 0.0,
    };
}

/// Parametric multiplier curves. Each is
/// `F(x) = min(1 + gain · (x / anchor)^exponent, cap)` with `gain = 0.5`
/// fixed by the §2.3 anchors (`F(anchor) = 1.5`).
///
/// ```
/// use pano_jnd::{ActionState, Multipliers};
///
/// let m = Multipliers::default();
/// // The paper's anchors: each factor at its threshold gives a 1.5x JND.
/// assert!((m.f_speed(10.0) - 1.5).abs() < 1e-9);
/// // Factors combine multiplicatively (Eq. 4's action-dependent ratio).
/// let a = ActionState { rel_speed_deg_s: 10.0, lum_change: 200.0, dof_diff: 0.0 };
/// assert!((m.action_ratio(&a) - 2.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Multipliers {
    /// Speed anchor: deg/s at which Fv = 1.5. Paper: 10 deg/s.
    pub speed_anchor: f64,
    /// Speed curve exponent.
    pub speed_exp: f64,
    /// Cap on Fv (saturation of the speed effect).
    pub speed_cap: f64,
    /// Luminance-change anchor: grey levels at which Fl = 1.5. Paper: 200.
    pub lum_anchor: f64,
    /// Luminance curve exponent.
    pub lum_exp: f64,
    /// Cap on Fl.
    pub lum_cap: f64,
    /// DoF-difference anchor: dioptres at which Fd = 1.5. Paper: 0.7.
    pub dof_anchor: f64,
    /// DoF curve exponent.
    pub dof_exp: f64,
    /// Cap on Fd.
    pub dof_cap: f64,
}

impl Default for Multipliers {
    fn default() -> Self {
        Multipliers {
            speed_anchor: 10.0,
            speed_exp: 1.3,
            speed_cap: 4.0,
            lum_anchor: 200.0,
            lum_exp: 1.1,
            lum_cap: 3.0,
            dof_anchor: 0.7,
            dof_exp: 1.2,
            dof_cap: 5.0,
        }
    }
}

/// Angular radius of the fovea-like high-sensitivity zone, degrees.
pub const FOVEA_DEG: f64 = 5.0;

/// Eccentricity (distance-to-viewpoint) JND multiplier — the classic
/// foveated-JND factor (§4.2 lists "distance-to-viewpoint" among the
/// traditional factors whose impact on JND is independent of the three
/// 360°-specific factors). Sensitivity is flat within the foveal zone and
/// falls with eccentricity beyond it, saturating far outside the viewport.
pub fn eccentricity_multiplier(dist_deg: f64) -> f64 {
    let d = (dist_deg - FOVEA_DEG).max(0.0);
    // Calibrated to the steep peripheral acuity fall-off (cortical
    // magnification): ~×3 at 20° eccentricity, ~×7 at 40°, saturating at
    // ×12 in the far periphery.
    (1.0 + 0.08 * d.powf(1.2)).min(12.0)
}

fn curve(x: f64, anchor: f64, exp: f64, cap: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 + 0.5 * (x / anchor).powf(exp)).min(cap)
}

impl Multipliers {
    /// Viewpoint-speed multiplier `Fv(x)`, `x` in deg/s.
    pub fn f_speed(&self, x: f64) -> f64 {
        curve(x, self.speed_anchor, self.speed_exp, self.speed_cap)
    }

    /// Luminance-change multiplier `Fl(x)`, `x` in grey levels over 5 s.
    pub fn f_lum(&self, x: f64) -> f64 {
        curve(x, self.lum_anchor, self.lum_exp, self.lum_cap)
    }

    /// DoF-difference multiplier `Fd(x)`, `x` in dioptres.
    pub fn f_dof(&self, x: f64) -> f64 {
        curve(x, self.dof_anchor, self.dof_exp, self.dof_cap)
    }

    /// The action-dependent ratio `A(x1, x2, x3) = Fv·Fd·Fl` (paper Eq. 4):
    /// the factor by which the content JND is scaled under `state`.
    pub fn action_ratio(&self, state: &ActionState) -> f64 {
        self.f_speed(state.rel_speed_deg_s)
            * self.f_dof(state.dof_diff)
            * self.f_lum(state.lum_change)
    }

    /// Maximum possible action ratio (all curves at their caps).
    pub fn max_ratio(&self) -> f64 {
        self.speed_cap * self.lum_cap * self.dof_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_at_rest() {
        let m = Multipliers::default();
        assert_eq!(m.f_speed(0.0), 1.0);
        assert_eq!(m.f_lum(0.0), 1.0);
        assert_eq!(m.f_dof(0.0), 1.0);
        assert_eq!(m.action_ratio(&ActionState::REST), 1.0);
    }

    #[test]
    fn paper_anchors_give_1_5() {
        let m = Multipliers::default();
        assert!((m.f_speed(10.0) - 1.5).abs() < 1e-9);
        assert!((m.f_lum(200.0) - 1.5).abs() < 1e-9);
        assert!((m.f_dof(0.7) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn monotone_non_decreasing() {
        let m = Multipliers::default();
        for i in 1..200 {
            let x = i as f64;
            assert!(m.f_speed(x) >= m.f_speed(x - 1.0));
            assert!(m.f_lum(x * 2.0) >= m.f_lum((x - 1.0) * 2.0));
            assert!(m.f_dof(x / 50.0) >= m.f_dof((x - 1.0) / 50.0));
        }
    }

    #[test]
    fn curves_saturate_at_caps() {
        let m = Multipliers::default();
        assert_eq!(m.f_speed(1e6), 4.0);
        assert_eq!(m.f_lum(1e6), 3.0);
        assert_eq!(m.f_dof(1e6), 5.0);
        assert_eq!(m.max_ratio(), 60.0);
    }

    #[test]
    fn action_ratio_is_the_product() {
        let m = Multipliers::default();
        let s = ActionState {
            rel_speed_deg_s: 10.0,
            lum_change: 200.0,
            dof_diff: 0.7,
        };
        assert!((m.action_ratio(&s) - 1.5f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn negative_inputs_treated_as_rest() {
        let m = Multipliers::default();
        assert_eq!(m.f_speed(-5.0), 1.0);
        assert_eq!(m.f_lum(-5.0), 1.0);
        assert_eq!(m.f_dof(-5.0), 1.0);
    }

    #[test]
    fn eccentricity_is_foveated() {
        // Flat within the fovea.
        assert_eq!(eccentricity_multiplier(0.0), 1.0);
        assert_eq!(eccentricity_multiplier(5.0), 1.0);
        // Rising beyond it.
        assert!(eccentricity_multiplier(20.0) > 1.4);
        assert!(eccentricity_multiplier(55.0) > eccentricity_multiplier(20.0));
        // Saturating far outside the viewport.
        assert_eq!(eccentricity_multiplier(180.0), 12.0);
        // Monotone.
        for d in 0..179 {
            assert!(eccentricity_multiplier(d as f64 + 1.0) >= eccentricity_multiplier(d as f64));
        }
    }

    proptest! {
        #[test]
        fn prop_ratio_bounds(speed in 0.0f64..200.0, lum in 0.0f64..255.0, dof in 0.0f64..3.0) {
            let m = Multipliers::default();
            let s = ActionState { rel_speed_deg_s: speed, lum_change: lum, dof_diff: dof };
            let r = m.action_ratio(&s);
            prop_assert!(r >= 1.0);
            prop_assert!(r <= m.max_ratio());
        }

        #[test]
        fn prop_independence_factorisation(speed in 0.0f64..50.0, dof in 0.0f64..2.0) {
            // The joint ratio with luminance at rest equals the product of
            // the individual ratios — the Fig. 7 independence structure.
            let m = Multipliers::default();
            let joint = m.action_ratio(&ActionState {
                rel_speed_deg_s: speed, lum_change: 0.0, dof_diff: dof,
            });
            prop_assert!((joint - m.f_speed(speed) * m.f_dof(dof)).abs() < 1e-12);
        }
    }
}
