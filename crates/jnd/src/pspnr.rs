//! PSNR, PMSE and PSPNR (paper Eq. 1–3).
//!
//! PSPNR filters out distortion below the JND threshold before computing a
//! PSNR-style score: only the perceptible part of each pixel error,
//! `max(|p − p̂| − JND, 0)`, enters the mean-square sum. Two computation
//! paths are provided:
//!
//! * **Exact** ([`pspnr_planes`]): per-pixel over two [`LumaPlane`]s plus a
//!   JND map — used by ground-truth checks and the observer panel.
//! * **Closed-form per tile** ([`PspnrComputer`]): the codec simulator
//!   exposes each tile's per-pixel error distribution as 16 quantiles;
//!   PMSE is the quantile average of `max(e − JND, 0)²`. This is what the
//!   provider pre-computation and the client's online estimator use — no
//!   pixels involved, which is why the lookup-table scheme (§6.2–6.3)
//!   can work.

use crate::content::ContentJnd;
use crate::multipliers::{ActionState, Multipliers};
use pano_arena::lanes;
use pano_telemetry::{Counter, Telemetry};
use pano_video::codec::{EncodedChunk, EncodedTile, QualityLevel};
use pano_video::{ChunkFeatures, LumaPlane};
use serde::{Deserialize, Serialize};

/// PSPNR is capped here when all distortion falls below the JND
/// (PMSE → 0 would send it to +∞).
pub const PSPNR_CAP_DB: f64 = 100.0;

/// Classic PSNR between two planes, in dB (capped at [`PSPNR_CAP_DB`]).
pub fn psnr_planes(original: &LumaPlane, encoded: &LumaPlane) -> f64 {
    let mse = original.mse(encoded);
    mse_to_db(mse)
}

/// Exact PSPNR between two planes given a per-pixel JND map.
///
/// `jnd` must have the same dimensions as the planes; its pixel values are
/// interpreted as grey-level JND thresholds (stored as f64 per pixel in
/// row-major order).
pub fn pspnr_planes(original: &LumaPlane, encoded: &LumaPlane, jnd: &[f64]) -> f64 {
    assert_eq!(
        original.data().len(),
        jnd.len(),
        "JND map must match plane size"
    );
    assert_eq!(
        (original.width(), original.height()),
        (encoded.width(), encoded.height()),
        "planes must have matching dimensions"
    );
    let mut sum = 0.0;
    for ((&a, &b), &j) in original.data().iter().zip(encoded.data()).zip(jnd) {
        let e = (a as f64 - b as f64).abs();
        if e >= j {
            let d = e - j;
            sum += d * d;
        }
    }
    mse_to_db(sum / jnd.len() as f64)
}

#[inline]
fn mse_to_db(mse: f64) -> f64 {
    if mse <= 1e-12 {
        return PSPNR_CAP_DB;
    }
    (20.0 * (255.0 / mse.sqrt()).log10()).min(PSPNR_CAP_DB)
}

/// Per-tile quality summary at one quality level under one action state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileQuality {
    /// Perceptible mean-square error (PMSE, `M(q)` in the paper).
    pub pmse: f64,
    /// PSPNR in dB (`P(q)`), capped at [`PSPNR_CAP_DB`].
    pub pspnr_db: f64,
    /// The JND threshold used (content JND × action ratio).
    pub jnd: f64,
}

/// Computes per-tile and per-chunk PSPNR from codec error quantiles.
#[derive(Debug, Clone, Default)]
pub struct PspnrComputer {
    content: ContentJnd,
    multipliers: Multipliers,
    tel: Telemetry,
    tile_evals: Counter,
    chunk_evals: Counter,
}

impl PspnrComputer {
    /// Creates a computer with explicit model parameters.
    pub fn new(content: ContentJnd, multipliers: Multipliers) -> Self {
        PspnrComputer {
            content,
            multipliers,
            tel: Telemetry::disabled(),
            tile_evals: Counter::noop(),
            chunk_evals: Counter::noop(),
        }
    }

    /// Attaches telemetry: tile and chunk evaluations are counted in
    /// `jnd.pspnr.tile_evals` / `jnd.pspnr.chunk_evals` and each chunk
    /// aggregate is timed under the `pspnr_chunk` span. Scores are
    /// unchanged.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self.tile_evals = tel.counter("jnd.pspnr.tile_evals");
        self.chunk_evals = tel.counter("jnd.pspnr.chunk_evals");
        self
    }

    /// The content-JND model in use.
    pub fn content(&self) -> &ContentJnd {
        &self.content
    }

    /// The multiplier curves in use.
    pub fn multipliers(&self) -> &Multipliers {
        &self.multipliers
    }

    /// Content-dependent JND of a tile: area-weighted mean of the cell
    /// JNDs (luminance adaptation + texture masking) over the tile's cells.
    pub fn tile_content_jnd(&self, features: &ChunkFeatures, tile: &EncodedTile) -> f64 {
        let mut sum = 0.0;
        let mut n = 0.0;
        for cell in tile.rect.cells() {
            sum += self.content.jnd_for_cell(features.cell(cell));
            n += 1.0;
        }
        sum / n
    }

    /// PMSE of a tile given its error quantiles and an effective JND
    /// threshold: the quantile mean of `max(e − jnd, 0)²` over errors at or
    /// above the threshold (paper Eq. 2–3).
    ///
    /// This is the reference kernel; [`Self::pmse_with_jnd_spread`] fuses
    /// three evaluations of it into one pass over the quantiles.
    #[inline]
    pub fn pmse_from_quantiles(quantiles: &[f64; 16], jnd: f64) -> f64 {
        let mut sum = 0.0;
        for &e in quantiles {
            if e >= jnd {
                let d = e - jnd;
                sum += d * d;
            }
        }
        sum / quantiles.len() as f64
    }

    /// Branchless lane formulation of [`Self::pmse_from_quantiles`]:
    /// `max(e − jnd, 0)²` per quantile with no data-dependent branch.
    /// Bit-identical to the reference by the same argument as
    /// [`Self::pmse_with_jnd_spread_lanes`] (sub-threshold terms are
    /// `+0.0`, a bitwise no-op on the non-negative running sum).
    #[inline]
    pub fn pmse_from_quantiles_lanes(quantiles: &[f64; 16], jnd: f64) -> f64 {
        let mut sum = 0.0;
        for &e in quantiles {
            let d = (e - jnd).max(0.0);
            sum += d * d;
        }
        sum / quantiles.len() as f64
    }

    /// PMSE with a within-tile JND spread: per-pixel JND inside a tile is
    /// not uniform (edges and flat mid-greys are far more sensitive than
    /// the tile average), so the tile-mean JND is expanded into a small
    /// three-point mixture at {0.4, 1.0, 1.6}× the mean with weights
    /// {0.25, 0.5, 0.25}. This keeps the top of the quality range
    /// discriminative — without it, any encoding whose mean error falls
    /// below the mean JND scores a saturated PSPNR, which real videos
    /// (and the paper's 45–70 dB operating range) do not show.
    ///
    /// The three mixture components are accumulated in a single pass over
    /// the quantile array. Each component's sum gathers the same terms in
    /// the same order as [`Self::pmse_from_quantiles`] would, so the result
    /// is bit-identical to the three-pass formulation.
    ///
    /// Dispatches between the scalar reference and the branchless lane
    /// formulation on [`lanes::enabled`]; both are bit-identical (see
    /// [`Self::pmse_with_jnd_spread_lanes`] for why).
    #[inline]
    pub fn pmse_with_jnd_spread(quantiles: &[f64; 16], jnd: f64) -> f64 {
        if lanes::enabled() {
            Self::pmse_with_jnd_spread_lanes(quantiles, jnd)
        } else {
            Self::pmse_with_jnd_spread_scalar(quantiles, jnd)
        }
    }

    /// Scalar reference formulation of [`Self::pmse_with_jnd_spread`]:
    /// branchy threshold tests, one pass over the quantiles.
    #[inline]
    pub fn pmse_with_jnd_spread_scalar(quantiles: &[f64; 16], jnd: f64) -> f64 {
        let (j0, j1, j2) = (jnd * 0.4, jnd, jnd * 1.6);
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for &e in quantiles {
            if e >= j0 {
                let d = e - j0;
                s0 += d * d;
            }
            if e >= j1 {
                let d = e - j1;
                s1 += d * d;
            }
            if e >= j2 {
                let d = e - j2;
                s2 += d * d;
            }
        }
        let n = quantiles.len() as f64;
        0.25 * (s0 / n) + 0.50 * (s1 / n) + 0.25 * (s2 / n)
    }

    /// Branchless lane formulation of [`Self::pmse_with_jnd_spread`]:
    /// every term is computed as `(e − j).max(0.0)²`, turning the three
    /// threshold tests into straight-line arithmetic the autovectorizer
    /// can lift into vector code.
    ///
    /// Bit-identity with the scalar reference holds term by term:
    /// * `e ≥ j` ⇒ `e − j ≥ 0`, so `max` is the identity and the squared
    ///   term matches the scalar branch exactly;
    /// * `e < j` ⇒ the term is `+0.0`, and `s + 0.0` is a bitwise no-op
    ///   for every non-negative `s` (the sums start at `+0.0` and only
    ///   ever accumulate non-negative terms);
    /// * a NaN input (`e` or `j`) makes `max` return its other operand
    ///   `0.0`, matching the scalar path's comparison-is-false skip.
    ///
    /// Accumulation order per sum is unchanged, so the reduction is
    /// bit-identical, not merely close (pinned by proptest below).
    #[inline]
    pub fn pmse_with_jnd_spread_lanes(quantiles: &[f64; 16], jnd: f64) -> f64 {
        let (j0, j1, j2) = (jnd * 0.4, jnd, jnd * 1.6);
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for &e in quantiles {
            let d0 = (e - j0).max(0.0);
            let d1 = (e - j1).max(0.0);
            let d2 = (e - j2).max(0.0);
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
        }
        let n = quantiles.len() as f64;
        0.25 * (s0 / n) + 0.50 * (s1 / n) + 0.25 * (s2 / n)
    }

    /// Batched [`Self::pmse_with_jnd_spread`] over many JND thresholds
    /// against one quantile array: `out[i] = pmse_with_jnd_spread(q,
    /// jnds[i])`, bit-identically. This is the builder's hot kernel — one
    /// call per (tile, level) covers the whole ratio grid, and one call
    /// per tile covers a lane of cells, amortizing the quantile loads
    /// [`lanes::WIDTH`]-fold.
    ///
    /// Panics unless `jnds` and `out` have equal lengths.
    #[inline]
    pub fn pmse_spread_batch(quantiles: &[f64; 16], jnds: &[f64], out: &mut [f64]) {
        if lanes::enabled() {
            Self::pmse_spread_batch_lanes(quantiles, jnds, out);
        } else {
            Self::pmse_spread_batch_scalar(quantiles, jnds, out);
        }
    }

    /// Scalar reference for [`Self::pmse_spread_batch`]: one independent
    /// [`Self::pmse_with_jnd_spread_scalar`] call per threshold.
    pub fn pmse_spread_batch_scalar(quantiles: &[f64; 16], jnds: &[f64], out: &mut [f64]) {
        assert_eq!(jnds.len(), out.len(), "one output slot per jnd");
        for (o, &jnd) in out.iter_mut().zip(jnds) {
            *o = Self::pmse_with_jnd_spread_scalar(quantiles, jnd);
        }
    }

    /// Lane formulation of [`Self::pmse_spread_batch`]: thresholds are
    /// processed [`lanes::WIDTH`] at a time with fixed-width `[f64;
    /// WIDTH]` accumulator arrays (three per lane block, one per spread
    /// component). The fixed-trip inner loop over independent lanes is
    /// what the autovectorizer turns into vector code; each lane's
    /// per-quantile accumulation order equals a scalar call's, so every
    /// output is bit-identical to the reference (pinned by proptest).
    pub fn pmse_spread_batch_lanes(quantiles: &[f64; 16], jnds: &[f64], out: &mut [f64]) {
        assert_eq!(jnds.len(), out.len(), "one output slot per jnd");
        const W: usize = lanes::WIDTH;
        for (jb, ob) in jnds.chunks_exact(W).zip(out.chunks_exact_mut(W)) {
            let mut j0 = [0.0f64; W];
            let mut j1 = [0.0f64; W];
            let mut j2 = [0.0f64; W];
            for l in 0..W {
                j0[l] = jb[l] * 0.4;
                j1[l] = jb[l];
                j2[l] = jb[l] * 1.6;
            }
            let mut s0 = [0.0f64; W];
            let mut s1 = [0.0f64; W];
            let mut s2 = [0.0f64; W];
            for &e in quantiles {
                for l in 0..W {
                    let d0 = (e - j0[l]).max(0.0);
                    let d1 = (e - j1[l]).max(0.0);
                    let d2 = (e - j2[l]).max(0.0);
                    s0[l] += d0 * d0;
                    s1[l] += d1 * d1;
                    s2[l] += d2 * d2;
                }
            }
            let n = quantiles.len() as f64;
            for l in 0..W {
                ob[l] = 0.25 * (s0[l] / n) + 0.50 * (s1[l] / n) + 0.25 * (s2[l] / n);
            }
        }
        let done = jnds.len() - jnds.len() % W;
        for (o, &jnd) in out[done..].iter_mut().zip(&jnds[done..]) {
            *o = Self::pmse_with_jnd_spread_lanes(quantiles, jnd);
        }
    }

    /// Quality of one tile at `level` under `action`.
    ///
    /// The PMSE is aggregated **per cell**: each cell's content JND is
    /// scaled by the action ratio and evaluated against the tile's error
    /// distribution, then the cell PMSEs are averaged. Averaging JNDs
    /// first would systematically understate the PMSE (it is convex in
    /// the JND), making sensitive cells inside mostly-masked tiles
    /// invisible to the allocator — the paper's offline phase avoids this
    /// by computing PSPNR from the true per-pixel JND map.
    pub fn tile_quality(
        &self,
        features: &ChunkFeatures,
        tile: &EncodedTile,
        level: QualityLevel,
        action: &ActionState,
    ) -> TileQuality {
        self.tile_quality_mode(features, tile, level, action, lanes::enabled())
    }

    /// [`Self::tile_quality`] with the lane/scalar path chosen explicitly
    /// instead of via `PANO_LANES` — the equivalence tests drive both
    /// paths in one process through this entry point.
    #[doc(hidden)]
    pub fn tile_quality_mode(
        &self,
        features: &ChunkFeatures,
        tile: &EncodedTile,
        level: QualityLevel,
        action: &ActionState,
        use_lanes: bool,
    ) -> TileQuality {
        self.tile_evals.inc();
        let ratio = self.multipliers.action_ratio(action);
        let quantiles = tile.error_quantiles(level);
        let mut pmse = 0.0;
        let mut jnd_sum = 0.0;
        let mut n = 0.0;
        if use_lanes {
            // Cells are batched into lane-wide JND blocks so one
            // `pmse_spread_batch_lanes` call amortizes the quantile loads
            // across the whole block. The per-cell reduction below adds
            // each cell's PMSE and JND in rect order — exactly the
            // scalar path's order — so the aggregate stays bit-identical.
            const W: usize = lanes::WIDTH;
            let mut jnds = [0.0f64; W];
            let mut outs = [0.0f64; W];
            let mut filled = 0usize;
            for cell in tile.rect.cells() {
                jnds[filled] = self.content.jnd_for_cell(features.cell(cell)) * ratio;
                filled += 1;
                if filled == W {
                    Self::pmse_spread_batch_lanes(&quantiles, &jnds, &mut outs);
                    for l in 0..W {
                        pmse += outs[l];
                        jnd_sum += jnds[l];
                        n += 1.0;
                    }
                    filled = 0;
                }
            }
            if filled > 0 {
                Self::pmse_spread_batch_lanes(&quantiles, &jnds[..filled], &mut outs[..filled]);
                for l in 0..filled {
                    pmse += outs[l];
                    jnd_sum += jnds[l];
                    n += 1.0;
                }
            }
        } else {
            for cell in tile.rect.cells() {
                let jnd = self.content.jnd_for_cell(features.cell(cell)) * ratio;
                pmse += Self::pmse_with_jnd_spread_scalar(&quantiles, jnd);
                jnd_sum += jnd;
                n += 1.0;
            }
        }
        pmse /= n;
        TileQuality {
            pmse,
            pspnr_db: mse_to_db(pmse),
            jnd: jnd_sum / n,
        }
    }

    /// Chunk-level PSPNR for a per-tile quality assignment under per-tile
    /// action states: the area-weighted PMSE aggregate of §6.1,
    /// `M = Σ S_t · M_t(q_t) / Σ S_t`, then `P = 20·log10(255/√M)`.
    ///
    /// Panics unless `levels`, `actions` and the chunk's tiles have equal
    /// lengths.
    pub fn chunk_pspnr(
        &self,
        features: &ChunkFeatures,
        chunk: &EncodedChunk,
        levels: &[QualityLevel],
        actions: &[ActionState],
    ) -> f64 {
        assert_eq!(levels.len(), chunk.tiles.len(), "one level per tile");
        assert_eq!(actions.len(), chunk.tiles.len(), "one action per tile");
        let _span = self.tel.span("pspnr_chunk");
        self.chunk_evals.inc();
        let mut weighted = 0.0;
        let mut area = 0.0;
        for ((tile, &level), action) in chunk.tiles.iter().zip(levels).zip(actions) {
            let q = self.tile_quality(features, tile, level, action);
            weighted += q.pmse * tile.pixel_area as f64;
            area += tile.pixel_area as f64;
        }
        mse_to_db(weighted / area)
    }

    /// Convenience: chunk PSPNR with a single action state for all tiles.
    pub fn chunk_pspnr_uniform_action(
        &self,
        features: &ChunkFeatures,
        chunk: &EncodedChunk,
        levels: &[QualityLevel],
        action: &ActionState,
    ) -> f64 {
        // pano-lint: allow(per-tile-alloc): cold per-chunk convenience wrapper, one alloc per chunk not per tile
        let actions = vec![*action; chunk.tiles.len()];
        self.chunk_pspnr(features, chunk, levels, &actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pano_geo::{Equirect, GridDims};
    use pano_video::codec::Encoder;
    use pano_video::ChunkFeatures;
    use proptest::prelude::*;

    fn setup() -> (Encoder, Equirect, ChunkFeatures, EncodedChunk) {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let dims = GridDims::PANO_UNIT;
        let feats = ChunkFeatures::uniform(0, 1.0, 30, dims, 20.0, 0.0, 128.0, 0.5);
        let chunk = enc.encode_chunk(&eq, &feats, &[dims.full_rect()]);
        (enc, eq, feats, chunk)
    }

    #[test]
    fn psnr_identical_planes_is_capped() {
        let p = LumaPlane::filled(16, 16, 100);
        assert_eq!(psnr_planes(&p, &p), PSPNR_CAP_DB);
    }

    #[test]
    fn psnr_known_value() {
        let a = LumaPlane::filled(8, 8, 100);
        let b = LumaPlane::filled(8, 8, 110);
        // MSE = 100, PSNR = 20 log10(255/10) = 28.13 dB.
        assert!((psnr_planes(&a, &b) - 28.1308).abs() < 1e-3);
    }

    #[test]
    fn pspnr_filters_subthreshold_distortion() {
        let a = LumaPlane::filled(8, 8, 100);
        let b = LumaPlane::filled(8, 8, 104); // |e| = 4 everywhere
        let jnd_low = vec![2.0; 64]; // perceptible: (4-2)^2 = 4
        let jnd_high = vec![6.0; 64]; // imperceptible
        let low = pspnr_planes(&a, &b, &jnd_low);
        let high = pspnr_planes(&a, &b, &jnd_high);
        assert!((low - 20.0 * (255.0f64 / 2.0).log10()).abs() < 1e-6);
        assert_eq!(high, PSPNR_CAP_DB);
        // PSPNR >= PSNR always.
        assert!(low > psnr_planes(&a, &b));
    }

    #[test]
    fn pmse_from_quantiles_threshold_behaviour() {
        let q = [4.0f64; 16];
        assert_eq!(PspnrComputer::pmse_from_quantiles(&q, 5.0), 0.0);
        assert!((PspnrComputer::pmse_from_quantiles(&q, 2.0) - 4.0).abs() < 1e-12);
        // jnd exactly equal counts as perceptible with zero magnitude.
        assert_eq!(PspnrComputer::pmse_from_quantiles(&q, 4.0), 0.0);
    }

    #[test]
    fn higher_quality_gives_higher_pspnr() {
        let (_, _, feats, chunk) = setup();
        let comp = PspnrComputer::default();
        let action = ActionState::REST;
        let mut prev = -1.0;
        for level in QualityLevel::all() {
            let q = comp.tile_quality(&feats, &chunk.tiles[0], level, &action);
            assert!(q.pspnr_db >= prev, "level {level:?}");
            prev = q.pspnr_db;
        }
    }

    #[test]
    fn faster_viewpoint_raises_pspnr() {
        // The core Pano effect: same encoding, moving viewpoint, higher
        // perceived quality (higher JND masks more distortion).
        let (_, _, feats, chunk) = setup();
        let comp = PspnrComputer::default();
        let slow = comp.tile_quality(&feats, &chunk.tiles[0], QualityLevel(1), &ActionState::REST);
        let fast = comp.tile_quality(
            &feats,
            &chunk.tiles[0],
            QualityLevel(1),
            &ActionState {
                rel_speed_deg_s: 20.0,
                ..ActionState::REST
            },
        );
        assert!(fast.pspnr_db > slow.pspnr_db);
        assert!(fast.jnd > slow.jnd);
    }

    #[test]
    fn chunk_pspnr_aggregates_by_area() {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let dims = GridDims::PANO_UNIT;
        let feats = ChunkFeatures::uniform(0, 1.0, 30, dims, 20.0, 0.0, 128.0, 0.5);
        let tiling = vec![
            pano_geo::GridRect::new(0, 0, 12, 12),
            pano_geo::GridRect::new(0, 12, 12, 12),
        ];
        let chunk = enc.encode_chunk(&eq, &feats, &tiling);
        let comp = PspnrComputer::default();
        let rest = ActionState::REST;

        // Uniform levels: chunk PSPNR equals per-tile PSPNR (same features).
        let uniform = comp.chunk_pspnr_uniform_action(
            &feats,
            &chunk,
            &[QualityLevel(1), QualityLevel(1)],
            &rest,
        );
        let single = comp
            .tile_quality(&feats, &chunk.tiles[0], QualityLevel(1), &rest)
            .pspnr_db;
        assert!((uniform - single).abs() < 1e-9);

        // Mixed levels land strictly between the two uniform assignments.
        let low = comp.chunk_pspnr_uniform_action(
            &feats,
            &chunk,
            &[QualityLevel(0), QualityLevel(0)],
            &rest,
        );
        let mixed = comp.chunk_pspnr_uniform_action(
            &feats,
            &chunk,
            &[QualityLevel(0), QualityLevel(4)],
            &rest,
        );
        let high = comp.chunk_pspnr_uniform_action(
            &feats,
            &chunk,
            &[QualityLevel(4), QualityLevel(4)],
            &rest,
        );
        assert!(low < mixed && mixed < high, "{low} {mixed} {high}");
    }

    #[test]
    fn telemetry_counts_evaluations_without_changing_scores() {
        let (_, _, feats, chunk) = setup();
        let tel = pano_telemetry::Telemetry::recording(
            pano_telemetry::RunId::from_parts("pspnr-test", 0),
            0,
        );
        let plain = PspnrComputer::default();
        let instrumented = PspnrComputer::default().with_telemetry(&tel);
        let levels = vec![QualityLevel(2); chunk.tiles.len()];
        let a = ActionState::REST;
        assert_eq!(
            plain.chunk_pspnr_uniform_action(&feats, &chunk, &levels, &a),
            instrumented.chunk_pspnr_uniform_action(&feats, &chunk, &levels, &a)
        );
        let snap = tel.snapshot();
        assert_eq!(snap.counters["jnd.pspnr.chunk_evals"], 1);
        assert_eq!(
            snap.counters["jnd.pspnr.tile_evals"],
            chunk.tiles.len() as u64
        );
        assert_eq!(snap.histograms["span.pspnr_chunk"].count, 1);
    }

    #[test]
    #[should_panic(expected = "one level per tile")]
    fn chunk_pspnr_wrong_arity_panics() {
        let (_, _, feats, chunk) = setup();
        PspnrComputer::default().chunk_pspnr(&feats, &chunk, &[], &[]);
    }

    #[test]
    fn dark_content_masks_more() {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let dims = GridDims::PANO_UNIT;
        let dark = ChunkFeatures::uniform(0, 1.0, 30, dims, 20.0, 0.0, 15.0, 0.5);
        let mid = ChunkFeatures::uniform(0, 1.0, 30, dims, 20.0, 0.0, 128.0, 0.5);
        let chunk_dark = enc.encode_chunk(&eq, &dark, &[dims.full_rect()]);
        let chunk_mid = enc.encode_chunk(&eq, &mid, &[dims.full_rect()]);
        let comp = PspnrComputer::default();
        let qd = comp.tile_quality(
            &dark,
            &chunk_dark.tiles[0],
            QualityLevel(0),
            &ActionState::REST,
        );
        let qm = comp.tile_quality(
            &mid,
            &chunk_mid.tiles[0],
            QualityLevel(0),
            &ActionState::REST,
        );
        assert!(qd.jnd > qm.jnd);
        assert!(qd.pspnr_db >= qm.pspnr_db);
    }

    proptest! {
        #[test]
        fn prop_pmse_monotone_in_jnd(jnd1 in 0.0f64..30.0, jnd2 in 0.0f64..30.0) {
            let (_, _, _, chunk) = setup();
            let q = chunk.tiles[0].error_quantiles(QualityLevel(0));
            let (lo, hi) = if jnd1 <= jnd2 { (jnd1, jnd2) } else { (jnd2, jnd1) };
            prop_assert!(
                PspnrComputer::pmse_from_quantiles(&q, hi)
                    <= PspnrComputer::pmse_from_quantiles(&q, lo)
            );
        }

        #[test]
        fn prop_fused_spread_equals_three_pass_reference(
            mae in 0.0f64..40.0,
            jnd in 0.0f64..60.0,
        ) {
            // The fused single-pass kernel must be *bit*-identical to the
            // three-pass composition of the reference kernel — same terms,
            // same accumulation order, tolerance zero.
            let mut q = [0.0f64; 16];
            for (qi, &base) in q.iter_mut().zip(pano_video::codec::DISTORTION_QUANTILES.iter()) {
                *qi = base * mae;
            }
            let reference = 0.25 * PspnrComputer::pmse_from_quantiles(&q, jnd * 0.4)
                + 0.50 * PspnrComputer::pmse_from_quantiles(&q, jnd)
                + 0.25 * PspnrComputer::pmse_from_quantiles(&q, jnd * 1.6);
            let fused = PspnrComputer::pmse_with_jnd_spread(&q, jnd);
            prop_assert_eq!(fused.to_bits(), reference.to_bits());
        }

        #[test]
        fn prop_pspnr_at_least_psnr_on_planes(delta in 0u8..40, jnd in 0.0f64..20.0) {
            let a = LumaPlane::filled(8, 8, 100);
            let b = LumaPlane::filled(8, 8, 100 + delta);
            let map = vec![jnd; 64];
            prop_assert!(pspnr_planes(&a, &b, &map) >= psnr_planes(&a, &b) - 1e-9);
        }

        #[test]
        fn prop_lane_spread_bit_equals_scalar(mae in 0.0f64..40.0, jnd in -5.0f64..60.0) {
            // The branchless lane kernel vs the branchy scalar reference:
            // tolerance zero, compared as bits.
            let mut q = [0.0f64; 16];
            for (qi, &base) in q.iter_mut().zip(pano_video::codec::DISTORTION_QUANTILES.iter()) {
                *qi = base * mae;
            }
            let scalar = PspnrComputer::pmse_with_jnd_spread_scalar(&q, jnd);
            let lane = PspnrComputer::pmse_with_jnd_spread_lanes(&q, jnd);
            prop_assert_eq!(lane.to_bits(), scalar.to_bits());
            let scalar_ref = PspnrComputer::pmse_from_quantiles(&q, jnd);
            let lane_ref = PspnrComputer::pmse_from_quantiles_lanes(&q, jnd);
            prop_assert_eq!(lane_ref.to_bits(), scalar_ref.to_bits());
        }

        #[test]
        fn prop_batch_spread_bit_equals_scalar_at_adversarial_lengths(
            mae in 0.0f64..40.0,
            seed in 0u64..1000,
        ) {
            // Lengths straddling the lane width: 0, 1, W−1, W, W+1, and a
            // large non-multiple. Every output slot must match the scalar
            // reference bit for bit.
            let w = pano_arena::lanes::WIDTH;
            let mut q = [0.0f64; 16];
            for (qi, &base) in q.iter_mut().zip(pano_video::codec::DISTORTION_QUANTILES.iter()) {
                *qi = base * mae;
            }
            for len in [0, 1, w - 1, w, w + 1, 5 * w + 3] {
                let jnds: Vec<f64> = (0..len)
                    .map(|i| ((seed + i as u64 * 7919) % 600) as f64 * 0.1)
                    .collect();
                let mut lane_out = vec![0.0f64; len];
                let mut scalar_out = vec![0.0f64; len];
                PspnrComputer::pmse_spread_batch_lanes(&q, &jnds, &mut lane_out);
                PspnrComputer::pmse_spread_batch_scalar(&q, &jnds, &mut scalar_out);
                for (a, b) in lane_out.iter().zip(&scalar_out) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        #[test]
        fn prop_tile_quality_lane_bit_equals_scalar(
            speed in 0.0f64..30.0,
            luma in 0.0f64..255.0,
        ) {
            let enc = Encoder::default();
            let eq = Equirect::PAPER_FULL;
            let dims = GridDims::PANO_UNIT;
            let feats = ChunkFeatures::uniform(0, 1.0, 30, dims, 20.0, 0.0, luma, 0.5);
            let chunk = enc.encode_chunk(&eq, &feats, &[dims.full_rect()]);
            let comp = PspnrComputer::default();
            let action = ActionState { rel_speed_deg_s: speed, ..ActionState::REST };
            for level in QualityLevel::all() {
                let s = comp.tile_quality_mode(&feats, &chunk.tiles[0], level, &action, false);
                let l = comp.tile_quality_mode(&feats, &chunk.tiles[0], level, &action, true);
                prop_assert_eq!(l.pmse.to_bits(), s.pmse.to_bits());
                prop_assert_eq!(l.pspnr_db.to_bits(), s.pspnr_db.to_bits());
                prop_assert_eq!(l.jnd.to_bits(), s.jnd.to_bits());
            }
        }
    }
}

#[cfg(test)]
mod cross_validation {
    //! Pixel-level validation: the closed-form quantile PMSE must agree
    //! with the exact per-pixel Eq. 1–3 computation when the per-pixel
    //! errors are actually drawn from the codec's quantile profile.

    use super::*;
    use pano_video::codec::DISTORTION_QUANTILES;

    /// Builds an (original, encoded) plane pair whose per-pixel absolute
    /// errors follow the 16-quantile profile scaled to `mae`, with signs
    /// alternating so values stay in range.
    fn plane_pair(mae: f64) -> (LumaPlane, LumaPlane) {
        let w = 64u32;
        let h = 64u32;
        let original = LumaPlane::filled(w, h, 128);
        let mut encoded = original.clone();
        let mut idx = 0usize;
        for y in 0..h {
            for x in 0..w {
                let e = DISTORTION_QUANTILES[idx % 16] * mae;
                let sign = if (x + y) % 2 == 0 { 1.0 } else { -1.0 };
                let v = (128.0 + sign * e).round().clamp(0.0, 255.0) as u8;
                encoded.set(x, y, v);
                idx += 1;
            }
        }
        (original, encoded)
    }

    #[test]
    fn quantile_pmse_matches_per_pixel_pspnr() {
        for mae in [2.0f64, 6.0, 15.0] {
            for jnd in [1.0f64, 4.0, 10.0] {
                let (orig, enc) = plane_pair(mae);
                let map = vec![jnd; orig.data().len()];
                let exact = pspnr_planes(&orig, &enc, &map);

                // Closed form over the same error profile. The plane pair
                // rounds errors to integer grey levels, so quantise the
                // quantiles the same way before comparing.
                let mut q = [0.0f64; 16];
                for (qi, &base) in q.iter_mut().zip(DISTORTION_QUANTILES.iter()) {
                    *qi = (base * mae).round();
                }
                let pmse = PspnrComputer::pmse_from_quantiles(&q, jnd);
                let closed = if pmse <= 1e-12 {
                    PSPNR_CAP_DB
                } else {
                    (20.0 * (255.0 / pmse.sqrt()).log10()).min(PSPNR_CAP_DB)
                };
                assert!(
                    (exact - closed).abs() < 0.75,
                    "mae={mae} jnd={jnd}: exact {exact} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn per_pixel_psnr_matches_quantile_mse() {
        let mae = 8.0;
        let (orig, enc) = plane_pair(mae);
        let exact = psnr_planes(&orig, &enc);
        let mse: f64 = DISTORTION_QUANTILES
            .iter()
            .map(|&u| (u * mae).round().powi(2))
            .sum::<f64>()
            / 16.0;
        let closed = 20.0 * (255.0 / mse.sqrt()).log10();
        assert!(
            (exact - closed).abs() < 0.3,
            "exact {exact} vs closed {closed}"
        );
    }
}
