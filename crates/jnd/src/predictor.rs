//! Linear MOS predictors on top of quality metrics (Fig. 8).
//!
//! The paper validates 360JND-based PSPNR by fitting a linear predictor
//! from each candidate metric (360JND-PSPNR, traditional-JND PSPNR, plain
//! PSNR) to the panel's mean opinion scores over a set of videos, then
//! comparing the distributions of relative estimation error. This module
//! provides the ordinary-least-squares fit and the error accounting.

use pano_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Which quality metric feeds the predictor — used for labelling results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// PSPNR computed with the full 360JND (content × action multipliers).
    Pspnr360Jnd,
    /// PSPNR with the traditional content-only JND (action ratio fixed at 1).
    PspnrTraditionalJnd,
    /// Plain PSNR (JND-agnostic).
    Psnr,
}

impl MetricKind {
    /// Human-readable label matching the paper's Fig. 8 legend.
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::Pspnr360Jnd => "PSPNR w/ 360JND",
            MetricKind::PspnrTraditionalJnd => "PSPNR w/ traditional JND",
            MetricKind::Psnr => "PSNR",
        }
    }
}

/// A fitted one-variable linear predictor `mos ≈ slope · metric + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearPredictor {
    /// Slope of the fit.
    pub slope: f64,
    /// Intercept of the fit.
    pub intercept: f64,
    /// Coefficient of determination of the fit on the training data.
    pub r_squared: f64,
}

impl LinearPredictor {
    /// Ordinary least squares over `(metric, mos)` pairs.
    ///
    /// Panics on fewer than two points (no line is defined). A degenerate
    /// x-variance (all metric values equal) yields a flat predictor at the
    /// mean MOS with `r_squared = 0`.
    pub fn fit(points: &[(f64, f64)]) -> LinearPredictor {
        assert!(points.len() >= 2, "need at least two points to fit a line");
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in points {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (y - mean_y);
            syy += (y - mean_y) * (y - mean_y);
        }
        if sxx < 1e-12 {
            return LinearPredictor {
                slope: 0.0,
                intercept: mean_y,
                r_squared: 0.0,
            };
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy < 1e-12 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        LinearPredictor {
            slope,
            intercept,
            r_squared,
        }
    }

    /// [`LinearPredictor::fit`] with telemetry: the fit is timed under the
    /// `predictor_fit` span, counted in `jnd.predictor.fits`, and the
    /// resulting goodness-of-fit lands in the `jnd.predictor.r_squared`
    /// gauge. The fitted predictor is identical to the plain `fit`.
    pub fn fit_with_telemetry(points: &[(f64, f64)], tel: &Telemetry) -> LinearPredictor {
        let fitted = {
            let _span = tel.span("predictor_fit");
            LinearPredictor::fit(points)
        };
        tel.counter("jnd.predictor.fits").inc();
        tel.gauge("jnd.predictor.r_squared").set(fitted.r_squared);
        fitted
    }

    /// Predicted MOS for a metric value.
    pub fn predict(&self, metric: f64) -> f64 {
        self.slope * metric + self.intercept
    }

    /// Relative estimation errors `|predicted − real| / real` for a set of
    /// `(metric, real_mos)` pairs — the paper's Fig. 8 quantity.
    pub fn relative_errors(&self, points: &[(f64, f64)]) -> Vec<f64> {
        points
            .iter()
            .map(|&(x, y)| {
                debug_assert!(y > 0.0, "MOS must be positive");
                (self.predict(x) - y).abs() / y
            })
            .collect()
    }
}

/// Builds an empirical CDF from samples: returns sorted `(value, cdf)`
/// pairs with `cdf` in `(0, 1]`.
pub fn empirical_cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i as f64 + 1.0) / n))
        .collect()
}

/// Median of a sample set (averaging the middle pair for even sizes).
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty set");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_fit_on_a_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        let p = LinearPredictor::fit(&pts);
        assert!((p.slope - 2.0).abs() < 1e-9);
        assert!((p.intercept - 1.0).abs() < 1e-9);
        assert!((p.r_squared - 1.0).abs() < 1e-9);
        assert!(p.relative_errors(&pts).iter().all(|&e| e < 1e-9));
    }

    #[test]
    fn noisy_fit_has_partial_r_squared() {
        let pts = [(1.0, 1.2), (2.0, 1.9), (3.0, 3.4), (4.0, 3.8), (5.0, 5.3)];
        let p = LinearPredictor::fit(&pts);
        assert!(p.r_squared > 0.9 && p.r_squared < 1.0);
        assert!(p.slope > 0.8 && p.slope < 1.3);
    }

    #[test]
    fn degenerate_x_gives_flat_predictor() {
        let pts = [(2.0, 1.0), (2.0, 3.0), (2.0, 5.0)];
        let p = LinearPredictor::fit(&pts);
        assert_eq!(p.slope, 0.0);
        assert_eq!(p.intercept, 3.0);
        assert_eq!(p.r_squared, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_single_point_panics() {
        LinearPredictor::fit(&[(1.0, 1.0)]);
    }

    #[test]
    fn better_metric_yields_lower_errors() {
        // Construct a "true" MOS driven by metric A; metric B is A plus
        // heavy noise. Predictor on A must beat predictor on B.
        let mut a_pts = Vec::new();
        let mut b_pts = Vec::new();
        let mut state = 12345u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..40 {
            let a = 40.0 + i as f64;
            let mos = 1.0 + (a - 40.0) / 10.0;
            let b = a + (next() - 0.5) * 30.0;
            a_pts.push((a, mos));
            b_pts.push((b, mos));
        }
        let pa = LinearPredictor::fit(&a_pts);
        let pb = LinearPredictor::fit(&b_pts);
        let ea = median(&pa.relative_errors(&a_pts));
        let eb = median(&pb.relative_errors(&b_pts));
        assert!(ea < eb, "clean metric {ea} vs noisy {eb}");
    }

    #[test]
    fn fit_with_telemetry_matches_plain_fit() {
        let pts = [(1.0, 1.2), (2.0, 1.9), (3.0, 3.4), (4.0, 3.8), (5.0, 5.3)];
        let tel = pano_telemetry::Telemetry::recording(
            pano_telemetry::RunId::from_parts("predictor-test", 0),
            0,
        );
        let plain = LinearPredictor::fit(&pts);
        let instrumented = LinearPredictor::fit_with_telemetry(&pts, &tel);
        assert_eq!(plain, instrumented);
        let snap = tel.snapshot();
        assert_eq!(snap.counters["jnd.predictor.fits"], 1);
        assert!((snap.gauges["jnd.predictor.r_squared"] - plain.r_squared).abs() < 1e-12);
        assert_eq!(snap.histograms["span.predictor_fit"].count, 1);
    }

    #[test]
    fn cdf_and_median_behave() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn metric_labels_match_figure_legend() {
        assert_eq!(MetricKind::Pspnr360Jnd.label(), "PSPNR w/ 360JND");
        assert_eq!(
            MetricKind::PspnrTraditionalJnd.label(),
            "PSPNR w/ traditional JND"
        );
        assert_eq!(MetricKind::Psnr.label(), "PSNR");
    }

    proptest! {
        #[test]
        fn prop_cdf_is_monotone(samples in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let cdf = empirical_cdf(&samples);
            for w in cdf.windows(2) {
                prop_assert!(w[1].0 >= w[0].0);
                prop_assert!(w[1].1 >= w[0].1);
            }
            prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_fit_minimises_reasonably(slope in -5.0f64..5.0, icept in -10.0f64..10.0) {
            let pts: Vec<(f64, f64)> =
                (0..20).map(|i| (i as f64, slope * i as f64 + icept)).collect();
            let p = LinearPredictor::fit(&pts);
            prop_assert!((p.slope - slope).abs() < 1e-6);
            prop_assert!((p.intercept - icept).abs() < 1e-6);
        }
    }
}
