//! # pano-jnd — the Pano 360° perceptual quality model
//!
//! This crate implements the paper's first contribution (§4): a quality
//! model for 360° video that extends Just-Noticeable-Difference (JND) based
//! PSPNR with three viewpoint-driven factors.
//!
//! The model is a product decomposition (Eq. 4 of the paper):
//!
//! ```text
//! 360JND(i,j) = C(i,j) · Fv(speed) · Fd(dof_diff) · Fl(lum_change)
//!               └──────┘ └──────────────────────────────────────┘
//!        content-dependent          action-dependent ratio A
//! ```
//!
//! * [`content`] — the content-dependent JND `C(i,j)`: classic luminance
//!   adaptation + texture masking (Chou & Li '95 style).
//! * [`multipliers`] — the three action-dependent multipliers `Fv`, `Fl`,
//!   `Fd`, anchored on the paper's §2.3 thresholds (10 deg/s, 200 grey
//!   levels, 0.7 dioptres each yield a 1.5× JND).
//! * [`pspnr`] — PSNR / PMSE / PSPNR, both exact (per-pixel, Eq. 1–3)
//!   and closed-form per tile from the codec's error quantiles.
//! * [`mos`] — the Table 3 PSPNR ↔ MOS map and a simulated rater.
//! * [`panel`] — a simulated 20-observer panel run through Appendix A's
//!   staircase protocol, used to *re-measure* the multipliers the way the
//!   paper's user study did.
//! * [`predictor`] — linear MOS predictors on top of quality metrics,
//!   used by the Fig. 8 metric-accuracy comparison.

#![forbid(unsafe_code)]

pub mod content;
pub mod mos;
pub mod multipliers;
pub mod panel;
pub mod predictor;
pub mod pspnr;

pub use content::ContentJnd;
pub use mos::{mos_from_pspnr, mos_to_scale, Rater};
pub use multipliers::{eccentricity_multiplier, ActionState, Multipliers, FOVEA_DEG};
pub use panel::{fit_multiplier, FittedCurve, Observer, Panel, StaircaseOutcome};
pub use predictor::{LinearPredictor, MetricKind};
pub use pspnr::{psnr_planes, pspnr_planes, PspnrComputer, TileQuality, PSPNR_CAP_DB};
