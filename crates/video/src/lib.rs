//! # pano-video — synthetic 360° video substrate
//!
//! Pano's algorithms consume three things from a video: per-region pixel
//! statistics (luminance, texture), per-region object motion/depth, and a
//! rate–distortion surface (how many bytes a tile costs at each quality
//! level, and how much distortion that level introduces). This crate
//! produces all three **from scratch**, substituting for the real videos,
//! the x264/FFmpeg encoder, and the Yolo+KCF object pipeline the paper used
//! (see DESIGN.md §1 for the substitution argument):
//!
//! * [`frame::LumaPlane`] — 8-bit luma frames with block statistics.
//! * [`scene`] — a parametric scene generator: moving objects with depth,
//!   background luminance fields, luminance events, per-genre presets.
//! * [`dataset`] — the paper's video datasets (18-video traced set and the
//!   50-video extended set) generated deterministically from seeds.
//! * [`codec`] — a block-based R-D codec simulator with the standard
//!   H.264-style QP exponential law and tile-boundary overhead.
//! * [`tracking`] — oracle object annotations degraded to the fidelity of
//!   the paper's detect-every-10-frames + interpolate pipeline.
//! * [`features`] — the per-cell chunk features every downstream stage
//!   (JND, tiling, adaptation) consumes.

#![forbid(unsafe_code)]

pub mod codec;
pub mod dataset;
pub mod export;
pub mod features;
pub mod frame;
pub mod scene;
pub mod tracking;

pub use codec::{CodecConfig, EncodedChunk, EncodedTile, Encoder, QualityLevel, QP_LADDER};
pub use dataset::{DatasetSpec, Genre, VideoSpec};
pub use export::{DatasetExport, DatasetIndex, VideoRecord};
pub use features::{CellFeatures, ChunkFeatures, FeatureExtractor, FeatureScratch};
pub use frame::LumaPlane;
pub use scene::{LuminanceEvent, ObjectSpec, Scene, SceneInstant, SceneSpec};
pub use tracking::{ObjectTrack, TrackedObject, Tracker};
