//! Video datasets.
//!
//! The paper evaluates on 50 videos across 7 genres (Table 2): a traced
//! subset of 18 videos that come with 48 real users' head trajectories, and
//! a 32-video extension with synthetic trajectories. We regenerate both as
//! deterministic synthetic scenes: each [`Genre`] maps to a parameter range
//! (object count/speed, texture, luminance dynamics, depth structure), and
//! a [`VideoSpec`] is drawn from that range by a seeded RNG.

use crate::scene::{LuminanceEvent, ObjectSpec, Scene, SceneSpec};
use pano_geo::{Degrees, Equirect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Content genre, with the paper's Table 2 genre mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Genre {
    /// Fast-moving tracked objects (skiing, football): high object speeds.
    Sports,
    /// Stage shows: strong luminance dynamics, slow viewpoints.
    Performance,
    /// Nature/history narration: slow pans, scenic depth.
    Documentary,
    /// Science/tech features: moderate dynamics.
    Science,
    /// Game captures: fast motion and high texture.
    Gaming,
    /// City/landscape tours: scenic views, large DoF spread.
    Tourism,
    /// Outdoor action (paragliding, climbing): fast motion + depth spread.
    Adventure,
}

impl Genre {
    /// All seven genres, in the paper's Figure 13 order.
    pub const ALL: [Genre; 7] = [
        Genre::Documentary,
        Genre::Science,
        Genre::Gaming,
        Genre::Sports,
        Genre::Tourism,
        Genre::Adventure,
        Genre::Performance,
    ];

    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Genre::Sports => "Sports",
            Genre::Performance => "Performance",
            Genre::Documentary => "Documentary",
            Genre::Science => "Science",
            Genre::Gaming => "Gaming",
            Genre::Tourism => "Tourism",
            Genre::Adventure => "Adventure",
        }
    }

    /// Typical object angular speed range (deg/s) for the genre.
    fn object_speed_range(&self) -> (f64, f64) {
        match self {
            Genre::Sports => (12.0, 40.0),
            Genre::Adventure => (10.0, 30.0),
            Genre::Gaming => (8.0, 25.0),
            Genre::Science => (3.0, 12.0),
            Genre::Tourism => (1.0, 6.0),
            Genre::Documentary => (1.0, 8.0),
            Genre::Performance => (2.0, 10.0),
        }
    }

    /// Number of foreground objects for the genre.
    fn object_count_range(&self) -> (u32, u32) {
        match self {
            Genre::Sports => (2, 5),
            Genre::Adventure => (2, 4),
            Genre::Gaming => (3, 6),
            Genre::Science => (1, 3),
            Genre::Tourism => (1, 3),
            Genre::Documentary => (1, 3),
            Genre::Performance => (2, 4),
        }
    }

    /// Luminance-event intensity: (events per minute, max grey-level swing).
    fn luminance_dynamics(&self) -> (f64, f64) {
        match self {
            Genre::Performance => (6.0, 220.0),
            Genre::Gaming => (4.0, 180.0),
            Genre::Adventure => (2.0, 120.0),
            Genre::Tourism => (1.0, 80.0),
            Genre::Sports => (1.0, 60.0),
            Genre::Science => (1.5, 100.0),
            Genre::Documentary => (0.5, 60.0),
        }
    }

    /// DoF spread between foreground and background (dioptres).
    fn dof_spread(&self) -> (f64, f64) {
        match self {
            Genre::Tourism => (0.8, 2.0),
            Genre::Adventure => (0.7, 1.8),
            Genre::Documentary => (0.5, 1.5),
            Genre::Science => (0.4, 1.2),
            Genre::Sports => (0.3, 1.0),
            Genre::Gaming => (0.2, 0.8),
            Genre::Performance => (0.3, 0.9),
        }
    }

    /// Background texture amplitude range (grey levels).
    fn texture_range(&self) -> (f64, f64) {
        match self {
            Genre::Gaming => (25.0, 45.0),
            Genre::Sports => (15.0, 35.0),
            Genre::Adventure => (18.0, 38.0),
            Genre::Tourism => (12.0, 30.0),
            Genre::Documentary => (10.0, 25.0),
            Genre::Science => (8.0, 20.0),
            Genre::Performance => (8.0, 22.0),
        }
    }
}

impl fmt::Display for Genre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single video in the dataset: identity + scene + encoding geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoSpec {
    /// Stable video id within its dataset.
    pub id: u32,
    /// Content genre.
    pub genre: Genre,
    /// Duration in seconds (and therefore in 1-s chunks).
    pub duration_secs: f64,
    /// Frame rate (Table 2: 30 fps).
    pub fps: u32,
    /// Full equirectangular resolution (Table 2: 2880×1440).
    pub resolution: Equirect,
    /// The generated scene.
    pub scene: SceneSpec,
}

impl VideoSpec {
    /// Number of 1-second chunks.
    pub fn chunk_count(&self) -> usize {
        self.duration_secs.ceil() as usize
    }

    /// Instantiates the queryable scene.
    pub fn scene(&self) -> Scene {
        Scene::new(self.scene.clone(), self.duration_secs)
    }

    /// Generates a video of `genre` deterministically from `seed`.
    pub fn generate(id: u32, genre: Genre, duration_secs: f64, seed: u64) -> VideoSpec {
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64) << 32);
        let (smin, smax) = genre.object_speed_range();
        let (cmin, cmax) = genre.object_count_range();
        let (ev_per_min, ev_swing) = genre.luminance_dynamics();
        let (dof_min, dof_max) = genre.dof_spread();
        let (tex_min, tex_max) = genre.texture_range();

        let n_obj = rng.gen_range(cmin..=cmax);
        let objects = (0..n_obj)
            .map(|i| {
                let speed_mag = rng.gen_range(smin..smax);
                let dir = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                ObjectSpec {
                    id: i,
                    yaw0: Degrees(rng.gen_range(-180.0..180.0)),
                    pitch0: Degrees(rng.gen_range(-35.0..35.0)),
                    yaw_speed: speed_mag * dir,
                    pitch_amp: rng.gen_range(0.0..8.0),
                    pitch_period: rng.gen_range(3.0..12.0),
                    size_deg: rng.gen_range(6.0..20.0),
                    dof_dioptre: rng.gen_range(dof_min..dof_max),
                    base_luma: rng.gen_range(40..210),
                    texture_amp: rng.gen_range(5.0..30.0),
                }
            })
            .collect();

        let n_events = ((duration_secs / 60.0) * ev_per_min).round().max(0.0) as usize;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let swing = rng.gen_range(ev_swing * 0.3..=ev_swing);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let regional = rng.gen_bool(0.6);
            let yaw_range = if regional {
                let lo = rng.gen_range(-180.0..180.0);
                let width = rng.gen_range(40.0..150.0);
                Some((Degrees(lo), Degrees(lo + width)))
            } else {
                None
            };
            events.push(LuminanceEvent {
                start: rng.gen_range(0.0..duration_secs.max(1.0)),
                ramp_secs: rng.gen_range(0.2..3.0),
                from_level: 0.0,
                to_level: sign * swing,
                yaw_range,
            });
        }

        let scene = SceneSpec {
            bg_luma: rng.gen_range(70..170),
            bg_luma_amp: rng.gen_range(10.0..40.0),
            bg_texture_freq: rng.gen_range(8.0..24.0),
            bg_texture_amp: rng.gen_range(tex_min..tex_max),
            bg_dof_dioptre: rng.gen_range(0.0..0.25),
            objects,
            events,
        };

        VideoSpec {
            id,
            genre,
            duration_secs,
            fps: 30,
            resolution: Equirect::PAPER_FULL,
            scene,
        }
    }
}

/// A generated dataset: the paper's traced 18-video set, the extended
/// 50-video set, or any custom mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// All videos.
    pub videos: Vec<VideoSpec>,
    /// Seed the dataset was generated from.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's Table 2 genre mix: Sports 22 %, Performance 20 %,
    /// Documentary 14 %, other 44 % (split evenly here).
    fn genre_for_index(i: usize, n: usize) -> Genre {
        let f = i as f64 / n as f64;
        if f < 0.22 {
            Genre::Sports
        } else if f < 0.42 {
            Genre::Performance
        } else if f < 0.56 {
            Genre::Documentary
        } else if f < 0.67 {
            Genre::Science
        } else if f < 0.78 {
            Genre::Gaming
        } else if f < 0.89 {
            Genre::Tourism
        } else {
            Genre::Adventure
        }
    }

    /// Generates a dataset of `n` videos with the Table 2 genre mix and
    /// total length scaled to the paper's 12 000 s over 50 videos
    /// (240 s per video on average).
    pub fn generate(n: usize, seed: u64) -> DatasetSpec {
        Self::generate_with_duration(n, 240.0, seed)
    }

    /// Generates `n` videos of `duration_secs` each (uniform duration keeps
    /// trace bookkeeping simple; Table 2 only constrains the total).
    pub fn generate_with_duration(n: usize, duration_secs: f64, seed: u64) -> DatasetSpec {
        let videos = (0..n)
            .map(|i| {
                VideoSpec::generate(
                    i as u32,
                    Self::genre_for_index(i, n),
                    duration_secs,
                    seed.wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                )
            })
            .collect();
        DatasetSpec { videos, seed }
    }

    /// The traced subset analogue: first 18 videos.
    pub fn traced_subset(&self) -> &[VideoSpec] {
        &self.videos[..self.videos.len().min(18)]
    }

    /// Videos of a given genre.
    pub fn by_genre(&self, genre: Genre) -> impl Iterator<Item = &VideoSpec> {
        self.videos.iter().filter(move |v| v.genre == genre)
    }

    /// Table 2 summary rows: `(genre, count, share)`.
    pub fn genre_summary(&self) -> Vec<(Genre, usize, f64)> {
        Genre::ALL
            .iter()
            .map(|&g| {
                let count = self.by_genre(g).count();
                (g, count, count as f64 / self.videos.len() as f64)
            })
            .collect()
    }

    /// Total dataset length in seconds.
    pub fn total_secs(&self) -> f64 {
        self.videos.iter().map(|v| v.duration_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::generate(50, 7);
        let b = DatasetSpec::generate(50, 7);
        assert_eq!(a, b);
        let c = DatasetSpec::generate(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn table2_shape() {
        let d = DatasetSpec::generate(50, 42);
        assert_eq!(d.videos.len(), 50);
        assert!((d.total_secs() - 12000.0).abs() < 1.0);
        let summary = d.genre_summary();
        let sports = summary
            .iter()
            .find(|(g, _, _)| *g == Genre::Sports)
            .unwrap();
        let perf = summary
            .iter()
            .find(|(g, _, _)| *g == Genre::Performance)
            .unwrap();
        let doc = summary
            .iter()
            .find(|(g, _, _)| *g == Genre::Documentary)
            .unwrap();
        assert!((sports.2 - 0.22).abs() < 0.03, "sports share {}", sports.2);
        assert!((perf.2 - 0.20).abs() < 0.03, "performance share {}", perf.2);
        assert!((doc.2 - 0.14).abs() < 0.03, "documentary share {}", doc.2);
        // Counts sum to the dataset size.
        assert_eq!(summary.iter().map(|(_, c, _)| c).sum::<usize>(), 50);
    }

    #[test]
    fn videos_have_paper_geometry() {
        let d = DatasetSpec::generate(18, 1);
        for v in &d.videos {
            assert_eq!(v.fps, 30);
            assert_eq!(v.resolution, Equirect::PAPER_FULL);
            assert_eq!(v.chunk_count(), 240);
            assert!(!v.scene.objects.is_empty());
        }
    }

    #[test]
    fn sports_objects_are_faster_than_tourism() {
        let d = DatasetSpec::generate(50, 99);
        let mean_speed = |g: Genre| {
            let mut speeds = Vec::new();
            for v in d.by_genre(g) {
                for o in &v.scene.objects {
                    speeds.push(o.yaw_speed.abs());
                }
            }
            speeds.iter().sum::<f64>() / speeds.len() as f64
        };
        assert!(mean_speed(Genre::Sports) > 2.0 * mean_speed(Genre::Tourism));
    }

    #[test]
    fn performance_has_strongest_luminance_dynamics() {
        let d = DatasetSpec::generate(50, 5);
        let mean_swing = |g: Genre| {
            let (mut sum, mut n) = (0.0, 0);
            for v in d.by_genre(g) {
                for e in &v.scene.events {
                    sum += (e.to_level - e.from_level).abs();
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };
        assert!(mean_swing(Genre::Performance) > mean_swing(Genre::Documentary));
    }

    #[test]
    fn traced_subset_is_18() {
        let d = DatasetSpec::generate(50, 3);
        assert_eq!(d.traced_subset().len(), 18);
    }

    #[test]
    fn scene_instantiates() {
        let d = DatasetSpec::generate(3, 11);
        for v in &d.videos {
            let scene = v.scene();
            assert_eq!(scene.duration_secs(), v.duration_secs);
        }
    }
}
