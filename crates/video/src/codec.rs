//! Block-based rate–distortion codec simulator.
//!
//! Pano's pipeline never looks at entropy-coded bits; it consumes, for each
//! tile of each chunk, (a) the encoded **size** at each quality level and
//! (b) the **distortion** that level introduces — plus the empirical fact
//! that cutting a video into more tiles inflates its total size (paper
//! Fig. 4). This module reproduces those three surfaces with standard
//! video-coding laws instead of a real encoder:
//!
//! * Quantiser step: `q_step(QP) = 2^((QP − 4) / 6)` (the H.264 law).
//! * Rate: bits/pixel falls exponentially with QP and rises with texture
//!   complexity and motion — `bpp = bpp_scale · (texture + motion_gain · v)
//!   · 2^(−QP/6) + bpp_floor`.
//! * Distortion: mean absolute error grows with the quantiser step,
//!   `mae = mae_scale · q_step^mae_exp`, distributed across pixels by a
//!   fixed quantile profile (an exponential-ish shape typical of transform
//!   coding residuals). The quantile profile is what lets the JND crate
//!   evaluate "what fraction of pixel errors exceed the JND threshold"
//!   in closed form, without per-pixel rendering.
//! * Tile overhead: each independently-encoded tile pays a fixed header
//!   plus a boundary penalty proportional to its perimeter — the mechanism
//!   behind Fig. 4's "12×24 tiling ≈ 2.8× the original size".

use crate::features::ChunkFeatures;
use pano_geo::{Equirect, GridDims, GridRect};
use serde::{Deserialize, Serialize};

/// The five-step QP ladder used throughout the paper (§8.1).
pub const QP_LADDER: [u8; 5] = [22, 27, 32, 37, 42];

/// A quality level: an index into the QP ladder.
///
/// Level 0 is the *highest* QP (coarsest quantisation, lowest quality,
/// smallest size); level 4 is the lowest QP (highest quality). Ordering by
/// level therefore orders by quality, which keeps the adaptation logic's
/// "higher level = better" invariant readable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QualityLevel(pub u8);

impl QualityLevel {
    /// Lowest quality (QP 42).
    pub const LOWEST: QualityLevel = QualityLevel(0);
    /// Highest quality (QP 22).
    pub const HIGHEST: QualityLevel = QualityLevel((QP_LADDER.len() - 1) as u8);

    /// All levels, lowest quality first.
    pub fn all() -> impl Iterator<Item = QualityLevel> {
        (0..QP_LADDER.len() as u8).map(QualityLevel)
    }

    /// The quantisation parameter for this level.
    pub fn qp(self) -> u8 {
        QP_LADDER[QP_LADDER.len() - 1 - self.0 as usize]
    }

    /// H.264 quantiser step size for this level.
    pub fn q_step(self) -> f64 {
        2f64.powf((self.qp() as f64 - 4.0) / 6.0)
    }

    /// Next higher quality, if any.
    pub fn up(self) -> Option<QualityLevel> {
        if self < Self::HIGHEST {
            Some(QualityLevel(self.0 + 1))
        } else {
            None
        }
    }

    /// Next lower quality, if any.
    pub fn down(self) -> Option<QualityLevel> {
        if self.0 > 0 {
            Some(QualityLevel(self.0 - 1))
        } else {
            None
        }
    }
}

/// Normalised distortion quantile profile: the distribution of per-pixel
/// absolute errors within a block, scaled so its mean is 1. Sixteen
/// equal-probability quantiles of an exponential-like residual shape.
///
/// Quantile `k` of Exp(1) is `-ln(1 - (k+0.5)/16)`; the values below are
/// that sequence, renormalised to mean exactly 1.0.
pub const DISTORTION_QUANTILES: [f64; 16] = [
    0.032_446, 0.100_603, 0.173_632, 0.252_284, 0.337_497, 0.430_468, 0.532_750, 0.646_419,
    0.774_332, 0.920_577, 1.091_302, 1.296_381, 1.553_217, 1.897_082, 2.419_130, 3.541_880,
];

/// Codec tuning constants. The defaults are calibrated so that
/// (a) a 240-s 2880×1440 video at mid-ladder QP lands in the low
/// single-digit Mbps the paper's traces exercise, and (b) the Fig. 4
/// tiling-overhead ratios come out at ≈1.1× (3×6), ≈1.5× (6×12),
/// ≈2.8× (12×24).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecConfig {
    /// Scale of the texture/motion-driven bits-per-pixel term.
    pub bpp_scale: f64,
    /// Floor on the activity term: even flat, static content carries
    /// sensor noise and film grain that a real encoder must spend bits on.
    /// This bounds the cross-video rate variance, without which synthetic
    /// low-texture videos become implausibly cheap to stream.
    pub activity_floor: f64,
    /// Slope of the rate response above the activity floor. Real encoders
    /// respond sub-linearly to texture (masking lets them quantise busy
    /// areas harder), so the slope is below one.
    pub activity_slope: f64,
    /// Extra effective texture per deg/s of content motion.
    pub motion_gain: f64,
    /// Floor bits-per-pixel an encoder cannot go below.
    pub bpp_floor: f64,
    /// Mean-absolute-error scale versus quantiser step.
    pub mae_scale: f64,
    /// Exponent of the quantiser step in the distortion law.
    pub mae_exp: f64,
    /// Fixed per-tile header cost in bytes (container + parameter sets).
    pub tile_header_bytes: f64,
    /// Boundary context loss: body bits are inflated by
    /// `1 + boundary_loss × perimeter/area`, modelling the prediction
    /// context lost at tile edges. Calibrated so Fig. 4's tiling ratios
    /// reproduce (≈1.4× at 3×6, ≈1.9× at 6×12, ≈2.8× at 12×24 for
    /// 2880×1440 frames).
    pub boundary_loss: f64,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            bpp_scale: 0.00017,
            activity_floor: 20.0,
            activity_slope: 0.5,
            motion_gain: 0.6,
            bpp_floor: 0.0003,
            mae_scale: 0.5,
            mae_exp: 0.92,
            tile_header_bytes: 220.0,
            boundary_loss: 40.0,
        }
    }
}

/// One tile of one chunk, "encoded" at every quality level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedTile {
    /// The rectangle of unit cells this tile covers.
    pub rect: GridRect,
    /// Pixel area of the tile at full resolution.
    pub pixel_area: u64,
    /// Encoded size in bytes, indexed by quality level (ascending quality).
    pub size_bytes: [u64; QP_LADDER.len()],
    /// Mean absolute per-pixel error at each quality level.
    pub mae: [f64; QP_LADDER.len()],
    /// Area-weighted mean texture complexity of the tile (gradient proxy).
    pub texture: f64,
    /// Area-weighted mean content motion inside the tile, deg/s.
    pub motion: f64,
}

impl EncodedTile {
    /// Encoded size at `level`.
    pub fn size(&self, level: QualityLevel) -> u64 {
        self.size_bytes[level.0 as usize]
    }

    /// Mean absolute error at `level`.
    pub fn mae_at(&self, level: QualityLevel) -> f64 {
        self.mae[level.0 as usize]
    }

    /// Per-pixel absolute error quantiles at `level`: the 16-point profile
    /// scaled by the tile's MAE. This is the distortion interface the
    /// PSPNR computation consumes.
    pub fn error_quantiles(&self, level: QualityLevel) -> [f64; 16] {
        let mae = self.mae_at(level);
        let mut q = DISTORTION_QUANTILES;
        for v in &mut q {
            *v *= mae;
        }
        q
    }

    /// Bitrate of this tile in bits/s given the chunk duration.
    pub fn bitrate_bps(&self, level: QualityLevel, chunk_secs: f64) -> f64 {
        self.size(level) as f64 * 8.0 / chunk_secs
    }
}

/// One chunk encoded under a given tiling: every tile at every level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedChunk {
    /// Chunk index within the video.
    pub chunk_idx: usize,
    /// Chunk duration in seconds.
    pub duration_secs: f64,
    /// The encoded tiles (their rects partition the unit grid).
    pub tiles: Vec<EncodedTile>,
}

impl EncodedChunk {
    /// Total size in bytes when every tile is at `level`.
    pub fn total_size(&self, level: QualityLevel) -> u64 {
        self.tiles.iter().map(|t| t.size(level)).sum()
    }

    /// Total size in bytes for a per-tile level assignment.
    ///
    /// Panics if `levels.len() != tiles.len()`.
    pub fn total_size_mixed(&self, levels: &[QualityLevel]) -> u64 {
        assert_eq!(levels.len(), self.tiles.len(), "one level per tile");
        self.tiles.iter().zip(levels).map(|(t, &l)| t.size(l)).sum()
    }
}

/// The codec simulator.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    config: CodecConfig,
}

impl Encoder {
    /// Creates an encoder with the given tuning.
    pub fn new(config: CodecConfig) -> Self {
        Encoder { config }
    }

    /// The active tuning.
    pub fn config(&self) -> &CodecConfig {
        &self.config
    }

    /// Bits per pixel of a region with the given texture complexity and
    /// motion at `level`.
    pub fn bits_per_pixel(&self, texture: f64, motion: f64, level: QualityLevel) -> f64 {
        let c = &self.config;
        let raw = texture + c.motion_gain * motion;
        let activity = c.activity_floor + c.activity_slope * (raw - c.activity_floor).max(0.0);
        c.bpp_scale * activity * 2f64.powf(-(level.qp() as f64) / 6.0) * 64.0 + c.bpp_floor
    }

    /// Mean absolute error introduced at `level` for a region with the
    /// given texture complexity. Texture masks distortion mildly (busy
    /// areas hide coding noise), which the `0.15` term captures.
    pub fn mean_abs_error(&self, texture: f64, level: QualityLevel) -> f64 {
        let c = &self.config;
        let masking = 1.0 + 0.15 * (texture / 20.0).min(2.0);
        c.mae_scale * level.q_step().powf(c.mae_exp) / masking
    }

    /// Encodes one chunk's features under a tiling (a partition of the
    /// unit grid into rectangles).
    ///
    /// `features` carries the per-cell texture/motion data for the chunk;
    /// `eq` fixes the full-resolution pixel geometry.
    pub fn encode_chunk(
        &self,
        eq: &Equirect,
        features: &ChunkFeatures,
        tiling: &[GridRect],
    ) -> EncodedChunk {
        let dims = features.dims;
        let tiles = tiling
            .iter()
            .map(|&rect| self.encode_tile(eq, dims, features, rect))
            .collect();
        EncodedChunk {
            chunk_idx: features.chunk_idx,
            duration_secs: features.duration_secs,
            tiles,
        }
    }

    /// Encodes a single tile (rectangle of unit cells).
    pub fn encode_tile(
        &self,
        eq: &Equirect,
        dims: GridDims,
        features: &ChunkFeatures,
        rect: GridRect,
    ) -> EncodedTile {
        let c = &self.config;
        let (_, _, w, h) = eq.rect_pixel_rect(dims, rect);
        let pixel_area = w as u64 * h as u64;

        // Area-weighted means over the covered cells.
        let mut texture = 0.0;
        let mut motion = 0.0;
        let mut area = 0.0;
        for cell in rect.cells() {
            let f = features.cell(cell);
            let (_, _, cw, ch) = eq.cell_pixel_rect(dims, cell);
            let a = (cw * ch) as f64;
            texture += f.texture * a;
            motion += f.content_speed * a;
            area += a;
        }
        texture /= area;
        motion /= area;

        // Frames per chunk: rate model is per frame, intra/inter mix folded
        // into bpp_scale. Boundary context loss inflates the body bits in
        // proportion to the tile's perimeter-to-area ratio.
        let frames = (features.duration_secs * features.fps as f64)
            .round()
            .max(1.0);
        let perimeter_px = 2.0 * (w as f64 + h as f64);
        let boundary_factor = 1.0 + c.boundary_loss * perimeter_px / pixel_area as f64;

        let mut size_bytes = [0u64; QP_LADDER.len()];
        let mut mae = [0.0; QP_LADDER.len()];
        for level in QualityLevel::all() {
            let bpp = self.bits_per_pixel(texture, motion, level);
            let body_bits = bpp * pixel_area as f64 * frames * boundary_factor;
            let bytes = body_bits / 8.0 + c.tile_header_bytes;
            size_bytes[level.0 as usize] = bytes.ceil() as u64;
            mae[level.0 as usize] = self.mean_abs_error(texture, level);
        }

        EncodedTile {
            rect,
            pixel_area,
            size_bytes,
            mae,
            texture,
            motion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::ChunkFeatures;

    fn flat_features(texture: f64, speed: f64) -> ChunkFeatures {
        let dims = GridDims::PANO_UNIT;
        ChunkFeatures::uniform(0, 1.0, 30, dims, texture, speed, 128.0, 0.5)
    }

    #[test]
    fn qp_ladder_ordering() {
        assert_eq!(QualityLevel::LOWEST.qp(), 42);
        assert_eq!(QualityLevel::HIGHEST.qp(), 22);
        let qps: Vec<u8> = QualityLevel::all().map(|l| l.qp()).collect();
        assert_eq!(qps, vec![42, 37, 32, 27, 22]);
        assert_eq!(QualityLevel::all().count(), 5);
    }

    #[test]
    fn q_step_follows_h264_law() {
        // Doubling every 6 QP.
        let a = QualityLevel(0).q_step(); // QP 42
        let b = QualityLevel(1).q_step(); // QP 37 (~0.56x)
        assert!(a > b);
        let l22 = QualityLevel::HIGHEST.q_step();
        assert!((l22 - 2f64.powf(3.0)).abs() < 1e-9); // (22-4)/6 = 3
    }

    #[test]
    fn up_down_navigation() {
        assert_eq!(QualityLevel::LOWEST.down(), None);
        assert_eq!(QualityLevel::HIGHEST.up(), None);
        assert_eq!(QualityLevel(1).up(), Some(QualityLevel(2)));
        assert_eq!(QualityLevel(1).down(), Some(QualityLevel(0)));
    }

    #[test]
    fn distortion_quantiles_mean_one() {
        let mean: f64 = DISTORTION_QUANTILES.iter().sum::<f64>() / 16.0;
        assert!((mean - 1.0).abs() < 1e-3, "mean {mean}");
        // Monotone nondecreasing.
        for w in DISTORTION_QUANTILES.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn higher_quality_means_bigger_and_cleaner() {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let feats = flat_features(20.0, 0.0);
        let chunk = enc.encode_chunk(&eq, &feats, &[GridDims::PANO_UNIT.full_rect()]);
        let tile = &chunk.tiles[0];
        for w in QualityLevel::all().collect::<Vec<_>>().windows(2) {
            assert!(tile.size(w[1]) > tile.size(w[0]), "size monotone");
            assert!(tile.mae_at(w[1]) < tile.mae_at(w[0]), "mae anti-monotone");
        }
    }

    #[test]
    fn texture_and_motion_increase_rate() {
        let enc = Encoder::default();
        let l = QualityLevel(2);
        assert!(enc.bits_per_pixel(30.0, 0.0, l) > enc.bits_per_pixel(10.0, 0.0, l));
        assert!(enc.bits_per_pixel(20.0, 20.0, l) > enc.bits_per_pixel(20.0, 0.0, l));
    }

    #[test]
    fn texture_masks_distortion() {
        let enc = Encoder::default();
        let l = QualityLevel(2);
        assert!(enc.mean_abs_error(40.0, l) < enc.mean_abs_error(5.0, l));
    }

    #[test]
    fn full_video_bitrate_is_plausible() {
        // A single-tile 2880x1440 chunk at mid quality should land in the
        // hundreds-of-kbps to tens-of-Mbps window — the regime where the
        // paper's 0.71/1.05 Mbps traces force real adaptation decisions
        // once only a subset of tiles is fetched at high quality.
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let feats = flat_features(20.0, 2.0);
        let chunk = enc.encode_chunk(&eq, &feats, &[GridDims::PANO_UNIT.full_rect()]);
        let mid = chunk.total_size(QualityLevel(2)) as f64 * 8.0 / 1.0;
        assert!(
            (0.3e6..3.0e6).contains(&mid),
            "mid-ladder bitrate {mid} bps out of range"
        );
        let low = chunk.total_size(QualityLevel::LOWEST) as f64 * 8.0;
        assert!(low < mid / 2.0, "ladder should span a wide rate range");
    }

    #[test]
    fn finer_tiling_costs_more_bytes() {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let feats = flat_features(20.0, 0.0);
        let dims = GridDims::PANO_UNIT;

        let whole = enc.encode_chunk(&eq, &feats, &[dims.full_rect()]);
        let grid_3x6: Vec<GridRect> = (0..3)
            .flat_map(|r| (0..6).map(move |c| GridRect::new(r * 4, c * 4, 4, 4)))
            .collect();
        let grid_12x24: Vec<GridRect> = dims.cells().map(GridRect::unit).collect();

        let s_whole = whole.total_size(QualityLevel(2));
        let s_coarse = enc
            .encode_chunk(&eq, &feats, &grid_3x6)
            .total_size(QualityLevel(2));
        let s_fine = enc
            .encode_chunk(&eq, &feats, &grid_12x24)
            .total_size(QualityLevel(2));
        assert!(s_coarse > s_whole);
        assert!(s_fine > s_coarse);
        // Fig. 4 shape: fine tiling is dramatically more expensive.
        let ratio_fine = s_fine as f64 / s_whole as f64;
        assert!(ratio_fine > 1.8, "12x24 ratio {ratio_fine}");
    }

    #[test]
    fn error_quantiles_scale_with_mae() {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let feats = flat_features(15.0, 0.0);
        let chunk = enc.encode_chunk(&eq, &feats, &[GridDims::PANO_UNIT.full_rect()]);
        let tile = &chunk.tiles[0];
        let q = tile.error_quantiles(QualityLevel(1));
        let mean = q.iter().sum::<f64>() / 16.0;
        assert!((mean - tile.mae_at(QualityLevel(1))).abs() < 1e-3 * mean);
    }

    #[test]
    fn mixed_size_accounts_each_tile() {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let feats = flat_features(20.0, 0.0);
        let dims = GridDims::PANO_UNIT;
        let tiling = vec![GridRect::new(0, 0, 12, 12), GridRect::new(0, 12, 12, 12)];
        let chunk = enc.encode_chunk(&eq, &feats, &tiling);
        let mixed = chunk.total_size_mixed(&[QualityLevel::LOWEST, QualityLevel::HIGHEST]);
        assert_eq!(
            mixed,
            chunk.tiles[0].size(QualityLevel::LOWEST) + chunk.tiles[1].size(QualityLevel::HIGHEST)
        );
        assert_eq!(chunk.tiles.len(), 2);
        assert!(pano_geo::grid::verify_partition(dims, &tiling).is_ok());
    }

    #[test]
    #[should_panic(expected = "one level per tile")]
    fn mixed_size_wrong_arity_panics() {
        let enc = Encoder::default();
        let eq = Equirect::PAPER_FULL;
        let feats = flat_features(20.0, 0.0);
        let chunk = enc.encode_chunk(&eq, &feats, &[GridDims::PANO_UNIT.full_rect()]);
        chunk.total_size_mixed(&[]);
    }
}

impl Encoder {
    /// Pixel-level encoding stand-in: applies the codec's distortion model
    /// to an actual luma plane, producing the "decoded" plane a real
    /// encoder/decoder pair would yield at `level`.
    ///
    /// Per-pixel absolute errors follow the same 16-quantile profile the
    /// closed-form path assumes (scaled by the region's MAE), with error
    /// magnitudes assigned pseudo-randomly but deterministically from the
    /// pixel position, and signs alternating to keep the mean shift near
    /// zero. This is the bridge that lets tests validate the quantile
    /// PSPNR pipeline against the exact per-pixel Eq. 1–3 computation on
    /// real rendered frames.
    pub fn encode_plane(
        &self,
        original: &crate::frame::LumaPlane,
        level: QualityLevel,
    ) -> crate::frame::LumaPlane {
        let stats = original.block_stats(0, 0, original.width(), original.height());
        let mae = self.mean_abs_error(stats.gradient_energy, level);
        let mut out = original.clone();
        for y in 0..original.height() {
            for x in 0..original.width() {
                // Cycle through all 16 quantiles with a row offset coprime
                // to 16, so every 16 consecutive pixels realise the exact
                // error distribution; the sign alternates per pixel.
                let idx = (x as usize + y as usize * 7) % 16;
                let q = DISTORTION_QUANTILES[idx];
                let sign = if (x + y) % 2 == 0 { 1.0 } else { -1.0 };
                let v = original.get(x, y) as f64 + sign * q * mae;
                out.set(x, y, v.round().clamp(0.0, 255.0) as u8);
            }
        }
        out
    }
}

#[cfg(test)]
mod plane_encoding_tests {
    use super::*;
    use crate::frame::LumaPlane;

    #[test]
    fn encoded_plane_matches_target_mae() {
        let enc = Encoder::default();
        let original = LumaPlane::filled(64, 64, 128);
        for level in QualityLevel::all() {
            let encoded = enc.encode_plane(&original, level);
            let target = enc.mean_abs_error(0.0, level);
            let measured: f64 = original
                .data()
                .iter()
                .zip(encoded.data())
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .sum::<f64>()
                / original.data().len() as f64;
            assert!(
                (measured - target).abs() < 0.35 + target * 0.05,
                "{level:?}: measured {measured} target {target}"
            );
        }
    }

    #[test]
    fn higher_quality_distorts_less() {
        let enc = Encoder::default();
        let original = LumaPlane::filled(32, 32, 100);
        let low = enc.encode_plane(&original, QualityLevel::LOWEST);
        let high = enc.encode_plane(&original, QualityLevel::HIGHEST);
        assert!(original.mse(&high) < original.mse(&low));
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = Encoder::default();
        let original = LumaPlane::filled(16, 16, 77);
        assert_eq!(
            enc.encode_plane(&original, QualityLevel(2)),
            enc.encode_plane(&original, QualityLevel(2))
        );
    }
}
