//! Luma frame planes.
//!
//! The quality model works on 8-bit luma (grey-level) values, like the
//! JND literature it builds on. A [`LumaPlane`] is a row-major `u8` plane
//! with the block-statistics helpers (mean, variance, gradient energy) that
//! drive the content-dependent JND and the codec's rate model.

use serde::{Deserialize, Serialize};

/// A row-major 8-bit luma plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LumaPlane {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

/// First-order statistics of a pixel region.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockStats {
    /// Mean grey level, `[0, 255]`.
    pub mean: f64,
    /// Variance of grey levels.
    pub variance: f64,
    /// Mean absolute horizontal+vertical gradient — the texture-complexity
    /// proxy used by both the codec rate model and the JND texture masking.
    pub gradient_energy: f64,
}

impl LumaPlane {
    /// Creates a plane filled with `fill`.
    pub fn filled(width: u32, height: u32, fill: u8) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be non-zero");
        LumaPlane {
            width,
            height,
            data: vec![fill; width as usize * height as usize],
        }
    }

    /// Creates a plane from raw row-major data.
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            width as usize * height as usize,
            "data length must match dimensions"
        );
        assert!(width > 0 && height > 0, "plane dimensions must be non-zero");
        LumaPlane {
            width,
            height,
            data,
        }
    }

    /// Plane width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Plane height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw row-major pixel data.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Pixel at `(x, y)`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Sets pixel at `(x, y)`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y as usize * self.width as usize + x as usize] = v;
    }

    /// One row of pixels.
    #[inline]
    pub fn row(&self, y: u32) -> &[u8] {
        let w = self.width as usize;
        &self.data[y as usize * w..(y as usize + 1) * w]
    }

    /// Copies out the rectangle `(x0, y0, w, h)` as a new plane.
    ///
    /// Panics if the rectangle exceeds the plane.
    pub fn crop(&self, x0: u32, y0: u32, w: u32, h: u32) -> LumaPlane {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop rectangle out of bounds"
        );
        let mut data = Vec::with_capacity(w as usize * h as usize);
        for y in y0..y0 + h {
            let row = self.row(y);
            data.extend_from_slice(&row[x0 as usize..(x0 + w) as usize]);
        }
        LumaPlane::from_raw(w, h, data)
    }

    /// Pastes `src` into this plane with its top-left corner at `(x0, y0)`.
    ///
    /// This is the "stitch tiles into a panoramic frame" operation from §7
    /// of the paper, done row-major so each row is a single `copy_from_slice`
    /// (the paper's memcpy optimisation).
    pub fn blit(&mut self, src: &LumaPlane, x0: u32, y0: u32) {
        assert!(
            x0 + src.width <= self.width && y0 + src.height <= self.height,
            "blit rectangle out of bounds"
        );
        let w = self.width as usize;
        for sy in 0..src.height {
            let dst_off = (y0 + sy) as usize * w + x0 as usize;
            self.data[dst_off..dst_off + src.width as usize].copy_from_slice(src.row(sy));
        }
    }

    /// Statistics of the rectangle `(x0, y0, w, h)`.
    pub fn block_stats(&self, x0: u32, y0: u32, w: u32, h: u32) -> BlockStats {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height && w > 0 && h > 0,
            "stats rectangle out of bounds or empty"
        );
        let n = (w as usize * h as usize) as f64;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut grad = 0.0f64;
        let mut grad_n = 0usize;
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                let p = self.get(x, y) as f64;
                sum += p;
                sum_sq += p * p;
                if x + 1 < x0 + w {
                    grad += (self.get(x + 1, y) as f64 - p).abs();
                    grad_n += 1;
                }
                if y + 1 < y0 + h {
                    grad += (self.get(x, y + 1) as f64 - p).abs();
                    grad_n += 1;
                }
            }
        }
        let mean = sum / n;
        BlockStats {
            mean,
            variance: (sum_sq / n - mean * mean).max(0.0),
            gradient_energy: if grad_n == 0 {
                0.0
            } else {
                grad / grad_n as f64
            },
        }
    }

    /// Mean grey level of the whole plane.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&p| p as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Mean squared error against another plane of the same dimensions.
    pub fn mse(&self, other: &LumaPlane) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "planes must have matching dimensions"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn filled_and_get_set() {
        let mut p = LumaPlane::filled(4, 3, 7);
        assert_eq!(p.get(3, 2), 7);
        p.set(1, 1, 200);
        assert_eq!(p.get(1, 1), 200);
        assert_eq!(p.width(), 4);
        assert_eq!(p.height(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        LumaPlane::filled(4, 3, 0).get(4, 0);
    }

    #[test]
    fn crop_extracts_rect() {
        let mut p = LumaPlane::filled(6, 6, 0);
        for y in 2..4 {
            for x in 1..4 {
                p.set(x, y, 9);
            }
        }
        let c = p.crop(1, 2, 3, 2);
        assert_eq!((c.width(), c.height()), (3, 2));
        assert!(c.data().iter().all(|&v| v == 9));
    }

    #[test]
    fn blit_round_trips_with_crop() {
        let mut base = LumaPlane::filled(8, 8, 0);
        let mut tile = LumaPlane::filled(3, 2, 0);
        for (i, v) in tile.data.iter_mut().enumerate() {
            *v = i as u8 + 1;
        }
        base.blit(&tile, 4, 5);
        assert_eq!(base.crop(4, 5, 3, 2), tile);
        // Outside the blit region stays untouched.
        assert_eq!(base.get(0, 0), 0);
        assert_eq!(base.get(3, 5), 0);
    }

    #[test]
    fn stitching_tiles_reassembles_frame() {
        // Emulate the client-side stitch: crop a frame into 4 tiles,
        // reassemble, and require bit-exact equality.
        let mut frame = LumaPlane::filled(10, 6, 0);
        for y in 0..6 {
            for x in 0..10 {
                frame.set(x, y, (x * 13 + y * 31) as u8);
            }
        }
        let tiles = [
            (frame.crop(0, 0, 5, 3), 0, 0),
            (frame.crop(5, 0, 5, 3), 5, 0),
            (frame.crop(0, 3, 5, 3), 0, 3),
            (frame.crop(5, 3, 5, 3), 5, 3),
        ];
        let mut out = LumaPlane::filled(10, 6, 0);
        for (t, x, y) in &tiles {
            out.blit(t, *x, *y);
        }
        assert_eq!(out, frame);
    }

    #[test]
    fn block_stats_flat_block() {
        let p = LumaPlane::filled(8, 8, 100);
        let s = p.block_stats(0, 0, 8, 8);
        assert_eq!(s.mean, 100.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.gradient_energy, 0.0);
    }

    #[test]
    fn block_stats_checkerboard_has_high_gradient() {
        let mut p = LumaPlane::filled(8, 8, 0);
        for y in 0..8 {
            for x in 0..8 {
                if (x + y) % 2 == 0 {
                    p.set(x, y, 255);
                }
            }
        }
        let s = p.block_stats(0, 0, 8, 8);
        assert!((s.mean - 127.5).abs() < 1.0);
        assert_eq!(s.gradient_energy, 255.0);
        assert!(s.variance > 16000.0);
    }

    #[test]
    fn mse_zero_on_self_positive_on_diff() {
        let a = LumaPlane::filled(4, 4, 10);
        let mut b = a.clone();
        assert_eq!(a.mse(&b), 0.0);
        b.set(0, 0, 26); // one pixel off by 16 -> mse = 256/16
        assert!((a.mse(&b) - 16.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_crop_blit_identity(
            w in 2u32..20, h in 2u32..20,
            seed in 0u64..1000,
        ) {
            let mut frame = LumaPlane::filled(w, h, 0);
            let mut s = seed.wrapping_add(1);
            for y in 0..h {
                for x in 0..w {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    frame.set(x, y, (s >> 56) as u8);
                }
            }
            // Crop arbitrary rect, blit back: identity.
            let cw = 1 + (seed % w as u64) as u32;
            let ch = 1 + (seed % h as u64) as u32;
            let x0 = (seed % (w - cw + 1) as u64) as u32;
            let y0 = (seed % (h - ch + 1) as u64) as u32;
            let tile = frame.crop(x0, y0, cw, ch);
            let mut copy = frame.clone();
            copy.blit(&tile, x0, y0);
            prop_assert_eq!(copy, frame);
        }

        #[test]
        fn prop_stats_mean_in_range(w in 1u32..16, h in 1u32..16, fill in 0u8..=255) {
            let p = LumaPlane::filled(w, h, fill);
            let s = p.block_stats(0, 0, w, h);
            prop_assert!((s.mean - fill as f64).abs() < 1e-9);
            prop_assert!(s.variance.abs() < 1e-9);
        }
    }
}
