//! Per-cell chunk features.
//!
//! The provider-side preprocessing step (paper §7) extracts, for every
//! chunk and every unit cell: mean luminance, depth of field, content
//! motion, texture complexity, and which object (if any) covers the cell.
//! Those features feed the JND model, the tiling algorithm, and the PSPNR
//! lookup table. [`FeatureExtractor`] computes them analytically from a
//! [`crate::scene::Scene`] by sampling the cell centres at several times
//! within the chunk.

use crate::scene::{Scene, SceneInstant};
use pano_arena::{lanes, Pool};
use pano_geo::{CellIdx, Equirect, GridDims, Viewpoint};
use serde::{Deserialize, Serialize};

/// Features of one unit cell averaged over one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CellFeatures {
    /// Mean grey level over the chunk, `[0, 255]`.
    pub luminance: f64,
    /// Mean depth of field, dioptres.
    pub dof_dioptre: f64,
    /// Mean angular speed of the content in the cell, deg/s (0 = static).
    pub content_speed: f64,
    /// Texture complexity (grey-level amplitude proxy).
    pub texture: f64,
    /// Object covering the cell at chunk midpoint, if any.
    pub object_id: Option<u32>,
}

/// All cell features for one chunk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkFeatures {
    /// Chunk index within the video.
    pub chunk_idx: usize,
    /// Chunk duration, seconds.
    pub duration_secs: f64,
    /// Video frame rate.
    pub fps: u32,
    /// The unit grid these features are computed on.
    pub dims: GridDims,
    /// Row-major cell features.
    cells: Vec<CellFeatures>,
}

impl ChunkFeatures {
    /// Builds features from a row-major cell vector.
    ///
    /// Panics if `cells.len() != dims.cell_count()`.
    pub fn from_cells(
        chunk_idx: usize,
        duration_secs: f64,
        fps: u32,
        dims: GridDims,
        cells: Vec<CellFeatures>,
    ) -> Self {
        assert_eq!(cells.len(), dims.cell_count(), "one entry per cell");
        ChunkFeatures {
            chunk_idx,
            duration_secs,
            fps,
            dims,
            cells,
        }
    }

    /// Uniform features across all cells — handy for tests and calibration.
    #[allow(clippy::too_many_arguments)]
    pub fn uniform(
        chunk_idx: usize,
        duration_secs: f64,
        fps: u32,
        dims: GridDims,
        texture: f64,
        content_speed: f64,
        luminance: f64,
        dof_dioptre: f64,
    ) -> Self {
        let cell = CellFeatures {
            luminance,
            dof_dioptre,
            content_speed,
            texture,
            object_id: None,
        };
        ChunkFeatures {
            chunk_idx,
            duration_secs,
            fps,
            dims,
            // pano-lint: allow(per-tile-alloc): test/calibration constructor, one alloc per chunk not per tile
            cells: vec![cell; dims.cell_count()],
        }
    }

    /// Features of one cell.
    #[inline]
    pub fn cell(&self, cell: CellIdx) -> &CellFeatures {
        &self.cells[self.dims.linear(cell)]
    }

    /// Mutable features of one cell.
    #[inline]
    pub fn cell_mut(&mut self, cell: CellIdx) -> &mut CellFeatures {
        &mut self.cells[self.dims.linear(cell)]
    }

    /// Iterates `(cell, features)` row-major.
    pub fn iter(&self) -> impl Iterator<Item = (CellIdx, &CellFeatures)> {
        self.dims.cells().map(move |c| (c, self.cell(c)))
    }

    /// Mean luminance across all cells (unweighted).
    pub fn mean_luminance(&self) -> f64 {
        self.cells.iter().map(|c| c.luminance).sum::<f64>() / self.cells.len() as f64
    }
}

/// Reusable scratch buffers for [`FeatureExtractor::extract_with`].
///
/// One `FeatureScratch` per worker amortises every per-chunk allocation of
/// the extraction kernel: the k×k lattice of sphere points, the SoA sample
/// columns the lane path writes into, and (via a [`Pool`]) the backing
/// buffers of the frozen scene snapshots. Reuse never changes results —
/// every buffer is fully overwritten before it is read.
#[derive(Debug, Default)]
pub struct FeatureScratch {
    /// k×k lattice of sphere points, reused across cells.
    points: Vec<Viewpoint>,
    /// SoA sample columns, one slot per lattice point (lane path only).
    luma: Vec<f64>,
    dof: Vec<f64>,
    speed: Vec<f64>,
    tex: Vec<f64>,
    /// Recycled backing buffers for per-chunk scene snapshots.
    instants: Pool<(Viewpoint, f64)>,
}

/// Extracts [`ChunkFeatures`] from a scene.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    eq: Equirect,
    dims: GridDims,
    /// Number of time samples per chunk (≥ 2; endpoints included).
    time_samples: usize,
    /// Spatial samples per cell per time sample (k × k lattice).
    spatial_samples: usize,
}

impl FeatureExtractor {
    /// Default extractor: 4 time samples, 2×2 spatial lattice per cell.
    pub fn new(eq: Equirect, dims: GridDims) -> Self {
        FeatureExtractor {
            eq,
            dims,
            time_samples: 4,
            spatial_samples: 2,
        }
    }

    /// Overrides sampling density (both must be ≥ 1; time samples ≥ 2).
    pub fn with_sampling(mut self, time_samples: usize, spatial_samples: usize) -> Self {
        assert!(time_samples >= 2 && spatial_samples >= 1);
        self.time_samples = time_samples;
        self.spatial_samples = spatial_samples;
        self
    }

    /// The grid this extractor works on.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The projection this extractor works on.
    pub fn equirect(&self) -> &Equirect {
        &self.eq
    }

    /// Extracts features for the chunk covering
    /// `[chunk_idx * chunk_secs, (chunk_idx + 1) * chunk_secs)`.
    ///
    /// Convenience wrapper over [`Self::extract_with`] with throwaway
    /// scratch; batch callers should hold a [`FeatureScratch`] per worker.
    pub fn extract(
        &self,
        scene: &Scene,
        fps: u32,
        chunk_idx: usize,
        chunk_secs: f64,
    ) -> ChunkFeatures {
        self.extract_with(
            scene,
            fps,
            chunk_idx,
            chunk_secs,
            &mut FeatureScratch::default(),
        )
    }

    /// Like [`Self::extract`], but reuses caller-owned scratch buffers so a
    /// worker extracting many chunks performs no steady-state allocation.
    pub fn extract_with(
        &self,
        scene: &Scene,
        fps: u32,
        chunk_idx: usize,
        chunk_secs: f64,
        scratch: &mut FeatureScratch,
    ) -> ChunkFeatures {
        self.extract_with_mode(scene, fps, chunk_idx, chunk_secs, scratch, lanes::enabled())
    }

    /// Mode-pinned body of [`Self::extract_with`]: `use_lanes` selects the
    /// batched SoA sampler or the scalar per-point loop. Public only so
    /// equivalence tests can drive both paths in one process.
    #[doc(hidden)]
    pub fn extract_with_mode(
        &self,
        scene: &Scene,
        fps: u32,
        chunk_idx: usize,
        chunk_secs: f64,
        scratch: &mut FeatureScratch,
        use_lanes: bool,
    ) -> ChunkFeatures {
        let t0 = chunk_idx as f64 * chunk_secs;
        let mid = t0 + chunk_secs / 2.0;
        let k = self.spatial_samples;
        let nt = self.time_samples;
        // Disjoint borrows of every scratch buffer.
        let FeatureScratch {
            points,
            luma: col_luma,
            dof: col_dof,
            speed: col_speed,
            tex: col_tex,
            instants: pool,
        } = scratch;

        // Per-chunk invariants, hoisted out of the cell loop: one frozen
        // scene snapshot per time sample (sample times within the chunk,
        // endpoints inclusive) plus one at the midpoint for object ids.
        // Object positions and speeds are thereby computed nt + 1 times
        // per chunk instead of once per (cell, spatial sample, time).
        // Snapshot backing buffers are recycled through the pool.
        let instants: Vec<SceneInstant<'_>> = (0..nt)
            .map(|ti| {
                scene.instant_with(t0 + chunk_secs * ti as f64 / (nt - 1) as f64, pool.take())
            })
            .collect();
        let mid_instant = scene.instant_with(mid, pool.take());

        let np = k * k;
        if use_lanes {
            col_luma.resize(np, 0.0);
            col_dof.resize(np, 0.0);
            col_speed.resize(np, 0.0);
            col_tex.resize(np, 0.0);
        }
        let mut cells = Vec::with_capacity(self.dims.cell_count());
        for cell in self.dims.cells() {
            let (x0, y0, w, h) = self.eq.cell_pixel_rect(self.dims, cell);
            // Lattice of sphere points, reused across cells: the sample
            // positions do not depend on the time sample.
            points.clear();
            for sy in 0..k {
                for sx in 0..k {
                    let px = x0 as f64 + (sx as f64 + 0.5) / k as f64 * w as f64;
                    let py = y0 as f64 + (sy as f64 + 0.5) / k as f64 * h as f64;
                    points.push(self.eq.pixel_to_sphere(px, py));
                }
            }
            let mut luma = 0.0;
            let mut dof = 0.0;
            let mut speed = 0.0;
            let mut texture = 0.0;
            let mut n = 0.0;
            // Accumulation order (time-outer, row-major lattice inner) is
            // identical on both paths, and each accumulator folds the same
            // values in the same order, so the sums are bit-identical to
            // the unhoisted per-point sampling.
            if use_lanes {
                for inst in &instants {
                    inst.sample_columns(points, col_luma, col_dof, col_speed, col_tex);
                    for i in 0..np {
                        luma += col_luma[i];
                        dof += col_dof[i];
                        speed += col_speed[i];
                        texture += col_tex[i];
                        n += 1.0;
                    }
                }
            } else {
                for inst in &instants {
                    for p in points.iter() {
                        let s = inst.sample(p);
                        luma += s.luma;
                        dof += s.dof_dioptre;
                        speed += s.content_speed;
                        texture += s.texture_amp;
                        n += 1.0;
                    }
                }
            }
            let center = self.eq.cell_center(self.dims, cell);
            let object_id = mid_instant.object_at(&center).map(|o| o.id);
            cells.push(CellFeatures {
                luminance: luma / n,
                dof_dioptre: dof / n,
                content_speed: speed / n,
                texture: texture / n,
                object_id,
            });
        }
        // Hand the snapshot buffers back for the next chunk.
        for inst in instants {
            pool.put(inst.into_buffer());
        }
        pool.put(mid_instant.into_buffer());
        ChunkFeatures::from_cells(chunk_idx, chunk_secs, fps, self.dims, cells)
    }

    /// Extracts features for every chunk of a scene, reusing one scratch.
    pub fn extract_all(&self, scene: &Scene, fps: u32, chunk_secs: f64) -> Vec<ChunkFeatures> {
        let n = (scene.duration_secs() / chunk_secs).ceil() as usize;
        let mut scratch = FeatureScratch::default();
        (0..n)
            .map(|i| self.extract_with(scene, fps, i, chunk_secs, &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{LuminanceEvent, Scene, SceneSpec};
    use pano_geo::Degrees;

    fn extractor() -> FeatureExtractor {
        FeatureExtractor::new(Equirect::PAPER_FULL, GridDims::PANO_UNIT)
    }

    #[test]
    fn uniform_constructor_round_trips() {
        let dims = GridDims::PANO_UNIT;
        let f = ChunkFeatures::uniform(3, 1.0, 30, dims, 12.0, 4.0, 99.0, 0.3);
        assert_eq!(f.chunk_idx, 3);
        for (_, c) in f.iter() {
            assert_eq!(c.texture, 12.0);
            assert_eq!(c.content_speed, 4.0);
            assert_eq!(c.luminance, 99.0);
            assert_eq!(c.dof_dioptre, 0.3);
        }
        assert_eq!(f.mean_luminance(), 99.0);
    }

    #[test]
    #[should_panic(expected = "one entry per cell")]
    fn wrong_cell_count_panics() {
        ChunkFeatures::from_cells(0, 1.0, 30, GridDims::PANO_UNIT, vec![]);
    }

    #[test]
    fn static_object_shows_up_in_its_cell() {
        // Grid cells are 15°×15°; use an object wide enough (30°) to cover
        // the cell around the origin, unlike the 8° appendix stimulus.
        let mut spec = SceneSpec::test_stimulus(0.0, 1.2, 128);
        spec.objects[0].size_deg = 30.0;
        let scene = Scene::new(spec, 10.0);
        let ex = extractor();
        let f = ex.extract(&scene, 30, 0, 1.0);
        let eq = Equirect::PAPER_FULL;
        let center_cell = eq.sphere_to_cell(GridDims::PANO_UNIT, &pano_geo::Viewpoint::forward());
        let c = f.cell(center_cell);
        assert_eq!(c.object_id, Some(0));
        // Object luma 50 dominates the cell centre samples.
        assert!(c.luminance < 128.0, "luma {}", c.luminance);
        assert!(c.dof_dioptre > 0.0);
        // A far-away cell is pure background.
        let far = eq.sphere_to_cell(
            GridDims::PANO_UNIT,
            &pano_geo::Viewpoint::new(Degrees(120.0), Degrees(0.0)),
        );
        assert_eq!(f.cell(far).object_id, None);
        assert_eq!(f.cell(far).luminance, 128.0);
    }

    #[test]
    fn moving_object_contributes_speed() {
        let scene = Scene::new(SceneSpec::test_stimulus(18.0, 1.0, 128), 10.0);
        let f = extractor().extract(&scene, 30, 0, 1.0);
        let max_speed = f
            .iter()
            .map(|(_, c)| c.content_speed)
            .fold(0.0f64, f64::max);
        assert!(max_speed > 1.0, "max speed {max_speed}");
    }

    #[test]
    fn luminance_event_changes_features_between_chunks() {
        let mut spec = SceneSpec::test_stimulus(0.0, 0.0, 100);
        spec.events.push(LuminanceEvent {
            start: 1.0,
            ramp_secs: 0.0,
            from_level: 0.0,
            to_level: 100.0,
            yaw_range: None,
        });
        let scene = Scene::new(spec, 4.0);
        let ex = extractor();
        let before = ex.extract(&scene, 30, 0, 1.0);
        let after = ex.extract(&scene, 30, 2, 1.0);
        assert!(after.mean_luminance() > before.mean_luminance() + 50.0);
    }

    #[test]
    fn extract_all_covers_duration() {
        let scene = Scene::new(SceneSpec::test_stimulus(5.0, 0.5, 120), 3.5);
        let all = extractor().extract_all(&scene, 30, 1.0);
        assert_eq!(all.len(), 4);
        for (i, f) in all.iter().enumerate() {
            assert_eq!(f.chunk_idx, i);
        }
    }

    /// A scene exercising objects, texture, and a ramped yaw-gated event.
    fn busy_scene() -> Scene {
        let mut spec = SceneSpec::test_stimulus(14.0, 1.1, 135);
        spec.bg_luma_amp = 22.0;
        spec.bg_texture_freq = 11.0;
        spec.bg_texture_amp = 16.0;
        spec.objects[0].size_deg = 28.0;
        spec.objects[0].texture_amp = 7.0;
        spec.events.push(LuminanceEvent {
            start: 0.4,
            ramp_secs: 1.5,
            from_level: 0.0,
            to_level: 35.0,
            yaw_range: Some((Degrees(-90.0), Degrees(90.0))),
        });
        Scene::new(spec, 6.0)
    }

    #[test]
    fn lane_path_bit_equals_scalar_path() {
        let scene = busy_scene();
        for (nt, k) in [(2, 1), (4, 2), (3, 3)] {
            let ex = FeatureExtractor::new(Equirect::PAPER_FULL, GridDims::PANO_UNIT)
                .with_sampling(nt, k);
            for chunk in 0..3 {
                let mut s_lane = FeatureScratch::default();
                let mut s_scal = FeatureScratch::default();
                let lane = ex.extract_with_mode(&scene, 30, chunk, 1.0, &mut s_lane, true);
                let scal = ex.extract_with_mode(&scene, 30, chunk, 1.0, &mut s_scal, false);
                assert_eq!(lane, scal, "nt {nt} k {k} chunk {chunk}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let scene = busy_scene();
        let ex = extractor();
        // One scratch threaded through all chunks vs a fresh scratch per
        // chunk: pooled snapshot buffers and resized columns must not leak
        // state between chunks.
        let mut reused = FeatureScratch::default();
        for chunk in 0..4 {
            let with_reuse = ex.extract_with(&scene, 30, chunk, 1.0, &mut reused);
            let fresh = ex.extract(&scene, 30, chunk, 1.0);
            assert_eq!(with_reuse, fresh, "chunk {chunk}");
        }
        // extract_all uses the same reuse path internally.
        let all = ex.extract_all(&scene, 30, 1.0);
        for (i, f) in all.iter().enumerate() {
            assert_eq!(*f, ex.extract(&scene, 30, i, 1.0), "extract_all chunk {i}");
        }
    }

    #[test]
    fn sampling_density_is_configurable() {
        let scene = Scene::new(SceneSpec::test_stimulus(10.0, 1.0, 128), 5.0);
        let coarse = FeatureExtractor::new(Equirect::PAPER_FULL, GridDims::PANO_UNIT)
            .with_sampling(2, 1)
            .extract(&scene, 30, 0, 1.0);
        let fine = FeatureExtractor::new(Equirect::PAPER_FULL, GridDims::PANO_UNIT)
            .with_sampling(6, 3)
            .extract(&scene, 30, 0, 1.0);
        // Both see the same scene; means should be in the same ballpark.
        assert!((coarse.mean_luminance() - fine.mean_luminance()).abs() < 5.0);
    }
}
