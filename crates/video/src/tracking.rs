//! Object trajectory extraction.
//!
//! The paper's provider pipeline (§7) runs Yolo on the first frame of each
//! second and a kernelized-correlation-filter tracker for the remaining
//! frames, then stores one trajectory sample per 10 frames in the manifest.
//! Our substitute queries the scene's oracle object positions, degrades
//! them to the same fidelity (detection cadence, sample-per-10-frames
//! output, small measurement noise), and exposes the trajectory interface
//! downstream code consumes.

use crate::scene::Scene;
use pano_geo::{Degrees, Viewpoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One tracked object's trajectory across a chunk: one position sample per
/// `sample_stride` frames, as stored in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectTrack {
    /// The object's stable id.
    pub object_id: u32,
    /// Time of the first sample, seconds.
    pub t0: f64,
    /// Seconds between consecutive samples (10 frames at 30 fps = 1/3 s).
    pub sample_interval: f64,
    /// Position samples.
    pub samples: Vec<Viewpoint>,
}

impl ObjectTrack {
    /// Position at time `t`, linearly interpolated between samples
    /// (slerp on the sphere). Clamps outside the sampled range.
    pub fn position_at(&self, t: f64) -> Viewpoint {
        if self.samples.is_empty() {
            return Viewpoint::forward();
        }
        let rel = (t - self.t0) / self.sample_interval;
        if rel <= 0.0 {
            return self.samples[0];
        }
        let last = self.samples.len() - 1;
        if rel >= last as f64 {
            return self.samples[last];
        }
        let i = rel.floor() as usize;
        let frac = rel - i as f64;
        self.samples[i].slerp(&self.samples[i + 1], frac)
    }

    /// Mean angular speed across the track, deg/s.
    pub fn mean_speed(&self) -> f64 {
        if self.samples.len() < 2 || self.sample_interval <= 0.0 {
            return 0.0;
        }
        let total: f64 = self
            .samples
            .windows(2)
            .map(|w| w[0].great_circle_distance(&w[1]).value())
            .sum();
        total / ((self.samples.len() - 1) as f64 * self.sample_interval)
    }

    /// Instantaneous speed at `t` from the surrounding samples, deg/s.
    pub fn speed_at(&self, t: f64) -> f64 {
        let dt = self.sample_interval.max(1e-6);
        let a = self.position_at(t - dt / 2.0);
        let b = self.position_at(t + dt / 2.0);
        a.great_circle_distance(&b).value() / dt
    }
}

/// A tracked object: identity + track + the scene-truth depth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedObject {
    /// The trajectory.
    pub track: ObjectTrack,
    /// Depth of field carried through from detection, dioptres.
    pub dof_dioptre: f64,
    /// Angular size, degrees.
    pub size_deg: f64,
}

/// The detect-and-track pipeline substitute.
#[derive(Debug, Clone)]
pub struct Tracker {
    /// Frames between stored trajectory samples (paper: 10).
    pub sample_stride: u32,
    /// Std-dev of per-sample angular measurement noise, degrees.
    pub noise_deg: f64,
    /// RNG seed for the measurement noise.
    pub seed: u64,
}

impl Default for Tracker {
    fn default() -> Self {
        Tracker {
            sample_stride: 10,
            noise_deg: 0.3,
            seed: 0x7AC4,
        }
    }
}

impl Tracker {
    /// Tracks every scene object over `[t0, t0 + duration)`, producing one
    /// sample per `sample_stride` frames at `fps`.
    pub fn track_chunk(
        &self,
        scene: &Scene,
        fps: u32,
        t0: f64,
        duration: f64,
    ) -> Vec<TrackedObject> {
        let interval = self.sample_stride as f64 / fps as f64;
        let n_samples = (duration / interval).round().max(1.0) as usize + 1;
        let mut rng = StdRng::seed_from_u64(self.seed ^ (t0 * 1000.0) as u64);
        scene
            .spec()
            .objects
            .iter()
            .map(|obj| {
                let samples = (0..n_samples)
                    .map(|i| {
                        let t = t0 + i as f64 * interval;
                        let truth = obj.position(t);
                        if self.noise_deg > 0.0 {
                            truth.offset(
                                Degrees(rng.gen_range(-self.noise_deg..=self.noise_deg)),
                                Degrees(rng.gen_range(-self.noise_deg..=self.noise_deg)),
                            )
                        } else {
                            truth
                        }
                    })
                    .collect();
                TrackedObject {
                    track: ObjectTrack {
                        object_id: obj.id,
                        t0,
                        sample_interval: interval,
                        samples,
                    },
                    dof_dioptre: obj.dof_dioptre,
                    size_deg: obj.size_deg,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Scene, SceneSpec};

    fn scene(speed: f64) -> Scene {
        Scene::new(SceneSpec::test_stimulus(speed, 1.0, 128), 30.0)
    }

    fn noiseless() -> Tracker {
        Tracker {
            noise_deg: 0.0,
            ..Tracker::default()
        }
    }

    #[test]
    fn track_has_paper_cadence() {
        let tracks = noiseless().track_chunk(&scene(10.0), 30, 0.0, 1.0);
        assert_eq!(tracks.len(), 1);
        let t = &tracks[0].track;
        // 10-frame stride at 30 fps = 1/3 s; 1 s chunk = 4 samples (0,1/3,2/3,1).
        assert!((t.sample_interval - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.samples.len(), 4);
    }

    #[test]
    fn noiseless_track_matches_truth() {
        let sc = scene(12.0);
        let tracks = noiseless().track_chunk(&sc, 30, 2.0, 1.0);
        let track = &tracks[0].track;
        let truth = &sc.spec().objects[0];
        for (i, s) in track.samples.iter().enumerate() {
            let t = 2.0 + i as f64 / 3.0;
            assert!(
                s.great_circle_distance(&truth.position(t)).value() < 1e-6,
                "sample {i}"
            );
        }
        // Interpolated position between samples is close to truth.
        let mid = track.position_at(2.1);
        assert!(mid.great_circle_distance(&truth.position(2.1)).value() < 0.2);
    }

    #[test]
    fn mean_speed_recovers_object_speed() {
        let tracks = noiseless().track_chunk(&scene(15.0), 30, 0.0, 1.0);
        let v = tracks[0].track.mean_speed();
        assert!((v - 15.0).abs() < 0.5, "speed {v}");
        let v_at = tracks[0].track.speed_at(0.5);
        assert!((v_at - 15.0).abs() < 1.0, "speed_at {v_at}");
    }

    #[test]
    fn position_clamps_outside_range() {
        let tracks = noiseless().track_chunk(&scene(10.0), 30, 0.0, 1.0);
        let t = &tracks[0].track;
        assert_eq!(t.position_at(-5.0), t.samples[0]);
        assert_eq!(t.position_at(99.0), *t.samples.last().unwrap());
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let tracker = Tracker {
            noise_deg: 0.5,
            ..Tracker::default()
        };
        let sc = scene(10.0);
        let a = tracker.track_chunk(&sc, 30, 0.0, 1.0);
        let b = tracker.track_chunk(&sc, 30, 0.0, 1.0);
        assert_eq!(a, b, "same seed, same tracks");
        let truth = &sc.spec().objects[0];
        for (i, s) in a[0].track.samples.iter().enumerate() {
            let t = i as f64 / 3.0;
            let err = s.great_circle_distance(&truth.position(t)).value();
            assert!(err <= 1.0, "noise too large: {err}");
        }
    }

    #[test]
    fn empty_track_defaults() {
        let t = ObjectTrack {
            object_id: 0,
            t0: 0.0,
            sample_interval: 0.1,
            samples: vec![],
        };
        assert_eq!(t.position_at(0.0), Viewpoint::forward());
        assert_eq!(t.mean_speed(), 0.0);
    }

    #[test]
    fn dof_and_size_carried_through() {
        let tracks = noiseless().track_chunk(&scene(5.0), 30, 0.0, 1.0);
        assert_eq!(tracks[0].dof_dioptre, 1.0);
        assert_eq!(tracks[0].size_deg, 8.0);
    }
}
