//! Dataset export — a public-release bundle in the spirit of the paper's
//! published dataset.
//!
//! [`DatasetExport`] serialises everything another group would need to
//! re-run the experiments without this codebase: the video specs (scene
//! parameters, not pixels — the scenes are deterministic functions of the
//! specs), the generation seed, and format metadata. `write_to_dir` lays
//! the bundle out as one JSON file per video plus an index.

use crate::dataset::DatasetSpec;
use crate::scene::SceneSpec;
use pano_geo::Equirect;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Format version written into every bundle.
pub const EXPORT_FORMAT_VERSION: u32 = 1;

/// The index file of an exported dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetIndex {
    /// Bundle format version.
    pub format_version: u32,
    /// Seed the dataset derives from.
    pub seed: u64,
    /// Number of videos in the bundle.
    pub video_count: usize,
    /// Total seconds of content.
    pub total_secs: f64,
    /// Per-video entries: `(file name, genre label, duration)`.
    pub videos: Vec<(String, String, f64)>,
}

/// One exported video record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoRecord {
    /// Video id within the dataset.
    pub id: u32,
    /// Genre label.
    pub genre: String,
    /// Duration, seconds.
    pub duration_secs: f64,
    /// Frame rate.
    pub fps: u32,
    /// Full resolution.
    pub resolution: Equirect,
    /// The deterministic scene description.
    pub scene: SceneSpec,
}

/// Serialises / deserialises dataset bundles.
pub struct DatasetExport;

impl DatasetExport {
    /// Builds the index for a dataset.
    pub fn index(dataset: &DatasetSpec) -> DatasetIndex {
        DatasetIndex {
            format_version: EXPORT_FORMAT_VERSION,
            seed: dataset.seed,
            video_count: dataset.videos.len(),
            total_secs: dataset.total_secs(),
            videos: dataset
                .videos
                .iter()
                .map(|v| {
                    (
                        format!("video_{:03}.json", v.id),
                        v.genre.label().to_string(),
                        v.duration_secs,
                    )
                })
                .collect(),
        }
    }

    /// Writes `index.json` plus one `video_NNN.json` per video into `dir`
    /// (created if missing). Returns the number of files written.
    pub fn write_to_dir(dataset: &DatasetSpec, dir: &Path) -> io::Result<usize> {
        fs::create_dir_all(dir)?;
        let index = Self::index(dataset);
        // Atomic writes: an interrupted export leaves whole files or no
        // file, never a torn JSON a later read_from_dir chokes on.
        pano_telemetry::atomic_write(
            dir.join("index.json"),
            &serde_json::to_vec_pretty(&index).expect("index serialises"),
        )?;
        let mut written = 1;
        for v in &dataset.videos {
            let record = VideoRecord {
                id: v.id,
                genre: v.genre.label().to_string(),
                duration_secs: v.duration_secs,
                fps: v.fps,
                resolution: v.resolution,
                scene: v.scene.clone(),
            };
            pano_telemetry::atomic_write(
                dir.join(format!("video_{:03}.json", v.id)),
                &serde_json::to_vec_pretty(&record).expect("record serialises"),
            )?;
            written += 1;
        }
        Ok(written)
    }

    /// Reads a bundle back: the index plus every referenced video record.
    pub fn read_from_dir(dir: &Path) -> io::Result<(DatasetIndex, Vec<VideoRecord>)> {
        let index: DatasetIndex = serde_json::from_slice(&fs::read(dir.join("index.json"))?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if index.format_version != EXPORT_FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "unsupported bundle format {} (expected {})",
                    index.format_version, EXPORT_FORMAT_VERSION
                ),
            ));
        }
        let mut records = Vec::with_capacity(index.videos.len());
        for (file, _, _) in &index.videos {
            let rec: VideoRecord = serde_json::from_slice(&fs::read(dir.join(file))?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            records.push(rec);
        }
        Ok((index, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pano_export_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_round_trips() {
        let dataset = DatasetSpec::generate_with_duration(4, 6.0, 99);
        let dir = tmp_dir("roundtrip");
        let written = DatasetExport::write_to_dir(&dataset, &dir).expect("write");
        assert_eq!(written, 5); // index + 4 videos

        let (index, records) = DatasetExport::read_from_dir(&dir).expect("read");
        assert_eq!(index.video_count, 4);
        assert_eq!(index.seed, 99);
        assert_eq!(records.len(), 4);
        for (rec, orig) in records.iter().zip(&dataset.videos) {
            assert_eq!(rec.id, orig.id);
            assert_eq!(rec.scene, orig.scene);
            assert_eq!(rec.fps, orig.fps);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exported_scene_regenerates_identically() {
        // The bundle carries scene parameters, not pixels: rebuilding the
        // scene from the record must give bit-identical samples.
        let dataset = DatasetSpec::generate_with_duration(1, 4.0, 7);
        let dir = tmp_dir("regen");
        DatasetExport::write_to_dir(&dataset, &dir).expect("write");
        let (_, records) = DatasetExport::read_from_dir(&dir).expect("read");
        let rebuilt = crate::scene::Scene::new(records[0].scene.clone(), 4.0);
        let original = dataset.videos[0].scene();
        let p = pano_geo::Viewpoint::new(pano_geo::Degrees(33.0), pano_geo::Degrees(-12.0));
        for t in [0.0, 1.5, 3.9] {
            assert_eq!(original.sample(&p, t), rebuilt.sample(&p, t));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_an_error() {
        let dataset = DatasetSpec::generate_with_duration(1, 2.0, 3);
        let dir = tmp_dir("version");
        DatasetExport::write_to_dir(&dataset, &dir).expect("write");
        // Corrupt the version.
        let mut index: DatasetIndex =
            serde_json::from_slice(&fs::read(dir.join("index.json")).unwrap()).unwrap();
        index.format_version += 1;
        fs::write(dir.join("index.json"), serde_json::to_vec(&index).unwrap()).unwrap();
        let err = DatasetExport::read_from_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_an_error() {
        let err = DatasetExport::read_from_dir(Path::new("/nonexistent/pano")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
