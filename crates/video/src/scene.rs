//! Parametric 360° scene generator.
//!
//! A [`Scene`] is the ground-truth world a synthetic video records: a
//! textured background sphere with a luminance field, a set of moving
//! foreground objects each carrying a depth-of-field value, and optional
//! scripted luminance events (a stage blackout, a tunnel exit). The scene
//! can be:
//!
//! * **rendered** to a [`LumaPlane`] at any resolution and time — used by
//!   the JND observer panel and the PSNR/PSPNR ground-truth path; and
//! * **queried analytically** — exact per-cell luminance, depth, motion,
//!   and texture at any time, used by the feature extractor so the
//!   streaming simulator never has to render full frames.
//!
//! Everything is deterministic given the spec; the spec itself is usually
//! generated from a seed by [`crate::dataset`].

use crate::frame::LumaPlane;
use pano_arena::lanes;
use pano_geo::{Degrees, Equirect, Viewpoint};
use serde::{Deserialize, Serialize};

/// A moving foreground object on the sphere.
///
/// Objects move along a great-circle-ish path at constant angular speed:
/// starting at (`yaw0`, `pitch0`), yaw advances at `yaw_speed` deg/s and
/// pitch oscillates sinusoidally with amplitude `pitch_amp` — enough to
/// produce the "fast skier against static background" structure the paper's
/// sports videos have, without a full physics model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// Stable object identity (used by tracking and viewpoint traces).
    pub id: u32,
    /// Initial yaw position.
    pub yaw0: Degrees,
    /// Initial pitch position.
    pub pitch0: Degrees,
    /// Yaw angular speed in deg/s (positive = rightward).
    pub yaw_speed: f64,
    /// Amplitude of the sinusoidal pitch oscillation, degrees.
    pub pitch_amp: f64,
    /// Period of the pitch oscillation, seconds.
    pub pitch_period: f64,
    /// Angular diameter of the object, degrees.
    pub size_deg: f64,
    /// Depth of field in dioptres (0 = infinitely far, ~2 = very near).
    pub dof_dioptre: f64,
    /// Base grey level of the object body.
    pub base_luma: u8,
    /// Texture amplitude: grey-level swing of the object's internal pattern.
    pub texture_amp: f64,
}

impl ObjectSpec {
    /// Ground-truth position at time `t` seconds.
    pub fn position(&self, t: f64) -> Viewpoint {
        let yaw = self.yaw0 + Degrees(self.yaw_speed * t);
        let pitch = if self.pitch_period > 0.0 {
            self.pitch0
                + Degrees(
                    self.pitch_amp * (2.0 * std::f64::consts::PI * t / self.pitch_period).sin(),
                )
        } else {
            self.pitch0
        };
        Viewpoint::new(yaw, pitch)
    }

    /// Ground-truth angular velocity at time `t`, in deg/s, computed by
    /// central differencing the path (robust to the pitch oscillation).
    pub fn angular_speed(&self, t: f64) -> f64 {
        let dt = 0.01;
        let a = self.position(t - dt / 2.0);
        let b = self.position(t + dt / 2.0);
        a.great_circle_distance(&b).value() / dt
    }
}

/// A scripted luminance change: the region (or the whole scene) ramps from
/// `from_level` to `to_level` over `[start, start + ramp_secs]`.
///
/// These drive the paper's Factor #2 — "change in scene luminance" — e.g.
/// urban night scenes where the viewpoint crosses between bright and dark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LuminanceEvent {
    /// Event start time, seconds.
    pub start: f64,
    /// Ramp duration, seconds (0 = step change).
    pub ramp_secs: f64,
    /// Luminance offset applied before the event (grey levels).
    pub from_level: f64,
    /// Luminance offset applied after the event (grey levels).
    pub to_level: f64,
    /// Yaw range `[min, max]` the event applies to; `None` = whole sphere.
    pub yaw_range: Option<(Degrees, Degrees)>,
}

impl LuminanceEvent {
    /// Luminance offset contributed by this event at time `t` and yaw `y`.
    pub fn offset_at(&self, t: f64, yaw: Degrees) -> f64 {
        if let Some((lo, hi)) = self.yaw_range {
            let y = yaw.wrap_180().value();
            let (lo, hi) = (lo.wrap_180().value(), hi.wrap_180().value());
            let inside = if lo <= hi {
                y >= lo && y <= hi
            } else {
                // Range wraps the antimeridian.
                y >= lo || y <= hi
            };
            if !inside {
                return 0.0;
            }
        }
        if t < self.start {
            self.from_level
        } else if self.ramp_secs <= 0.0 || t >= self.start + self.ramp_secs {
            self.to_level
        } else {
            let f = (t - self.start) / self.ramp_secs;
            self.from_level + (self.to_level - self.from_level) * f
        }
    }
}

/// Static description of a synthetic 360° scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSpec {
    /// Base background grey level before luminance fields/events.
    pub bg_luma: u8,
    /// Amplitude of the background's spatial luminance variation.
    pub bg_luma_amp: f64,
    /// Spatial frequency of the background texture (cycles per 360° of yaw).
    pub bg_texture_freq: f64,
    /// Amplitude of the background texture (grey levels) — the texture
    /// complexity knob; high values mean high JND masking and high bitrate.
    pub bg_texture_amp: f64,
    /// Background depth of field in dioptres (scenery is far: near 0).
    pub bg_dof_dioptre: f64,
    /// Foreground objects.
    pub objects: Vec<ObjectSpec>,
    /// Scripted luminance events.
    pub events: Vec<LuminanceEvent>,
}

impl SceneSpec {
    /// A minimal single-object test scene: one object of `size_deg` degrees
    /// moving at `yaw_speed` deg/s over a flat mid-grey background. This is
    /// the synthetic stimulus layout of the paper's Appendix A user study.
    pub fn test_stimulus(yaw_speed: f64, dof_dioptre: f64, bg_luma: u8) -> SceneSpec {
        SceneSpec {
            bg_luma,
            bg_luma_amp: 0.0,
            bg_texture_freq: 0.0,
            bg_texture_amp: 0.0,
            bg_dof_dioptre: 0.0,
            objects: vec![ObjectSpec {
                id: 0,
                yaw0: Degrees(0.0),
                pitch0: Degrees(0.0),
                yaw_speed,
                pitch_amp: 0.0,
                pitch_period: 0.0,
                size_deg: 8.0, // ~64 px at 2880-wide: 64 * (360/2880) = 8 deg
                dof_dioptre,
                base_luma: 50, // the appendix's constant grey level 50
                texture_amp: 0.0,
            }],
            events: Vec::new(),
        }
    }
}

/// A scene bound to a wall-clock duration: the queryable ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    spec: SceneSpec,
    duration_secs: f64,
}

/// Analytic sample of the scene at one sphere point and time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneSample {
    /// Grey level `[0, 255]` after luminance fields and events.
    pub luma: f64,
    /// Depth of field at this point, dioptres.
    pub dof_dioptre: f64,
    /// Angular velocity of the content at this point, deg/s (0 for
    /// background, the object's speed inside an object).
    pub content_speed: f64,
    /// Texture amplitude at this point (grey levels).
    pub texture_amp: f64,
    /// Id of the covering object, if any.
    pub object_id: Option<u32>,
}

impl Scene {
    /// Binds a spec to a duration.
    pub fn new(spec: SceneSpec, duration_secs: f64) -> Self {
        assert!(duration_secs > 0.0, "scene duration must be positive");
        Scene {
            spec,
            duration_secs,
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &SceneSpec {
        &self.spec
    }

    /// Scene duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.duration_secs
    }

    /// The object covering sphere point `p` at time `t`, topmost (latest
    /// in the list) first, if any.
    pub fn object_at(&self, p: &Viewpoint, t: f64) -> Option<&ObjectSpec> {
        self.spec
            .objects
            .iter()
            .rev()
            .find(|o| o.position(t).great_circle_distance(p).value() <= o.size_deg / 2.0)
    }

    /// Background luminance (before events) at a sphere point: a smooth
    /// field varying with yaw and pitch.
    fn bg_luma_field(&self, p: &Viewpoint) -> f64 {
        let s = &self.spec;
        let v = s.bg_luma as f64
            + s.bg_luma_amp * (p.yaw().to_radians().value()).sin()
            + s.bg_luma_amp * 0.5 * (2.0 * p.pitch().to_radians().value()).cos();
        v.clamp(0.0, 255.0)
    }

    /// Background texture value at a point: a deterministic high-frequency
    /// pattern whose amplitude is the spec's `bg_texture_amp`.
    fn bg_texture(&self, p: &Viewpoint) -> f64 {
        let s = &self.spec;
        if s.bg_texture_amp == 0.0 || s.bg_texture_freq == 0.0 {
            return 0.0;
        }
        let u = p.yaw().to_radians().value() * s.bg_texture_freq;
        let v = p.pitch().to_radians().value() * s.bg_texture_freq * 2.0;
        s.bg_texture_amp * (u.sin() * v.cos())
    }

    /// Total scripted luminance offset at `(t, yaw)`.
    fn event_offset(&self, t: f64, yaw: Degrees) -> f64 {
        self.spec.events.iter().map(|e| e.offset_at(t, yaw)).sum()
    }

    /// Analytic sample at sphere point `p`, time `t`.
    pub fn sample(&self, p: &Viewpoint, t: f64) -> SceneSample {
        let ev = self.event_offset(t, p.yaw());
        if let Some(obj) = self.object_at(p, t) {
            // Object texture: radial pattern inside the object disc.
            let d = obj.position(t).great_circle_distance(p).value();
            let tex = if obj.texture_amp > 0.0 {
                obj.texture_amp * (d / obj.size_deg * 8.0 * std::f64::consts::PI).sin()
            } else {
                0.0
            };
            SceneSample {
                luma: (obj.base_luma as f64 + tex + ev).clamp(0.0, 255.0),
                dof_dioptre: obj.dof_dioptre,
                content_speed: obj.angular_speed(t),
                texture_amp: obj.texture_amp,
                object_id: Some(obj.id),
            }
        } else {
            SceneSample {
                luma: (self.bg_luma_field(p) + self.bg_texture(p) + ev).clamp(0.0, 255.0),
                dof_dioptre: self.spec.bg_dof_dioptre,
                content_speed: 0.0,
                texture_amp: self.spec.bg_texture_amp,
                object_id: None,
            }
        }
    }

    /// Freezes the scene at time `t`: object positions and angular speeds
    /// are computed once, so dense spatial sampling (the feature
    /// extractor's k² × cells lattice) does not re-derive the trigonometry
    /// per point. Samples are bit-identical to [`Scene::sample`] at `t`.
    pub fn instant(&self, t: f64) -> SceneInstant<'_> {
        self.instant_with(t, Vec::new())
    }

    /// [`Scene::instant`] with a caller-supplied backing buffer for the
    /// per-object snapshots — the feature extractor's scratch pool hands
    /// buffers back in so dense chunk sweeps allocate nothing per
    /// instant. The buffer is cleared first; recover it afterwards with
    /// [`SceneInstant::into_buffer`]. Snapshots are identical to
    /// [`Scene::instant`] regardless of what the buffer held before.
    pub fn instant_with(&self, t: f64, mut buf: Vec<(Viewpoint, f64)>) -> SceneInstant<'_> {
        buf.clear();
        buf.extend(
            self.spec
                .objects
                .iter()
                .map(|o| (o.position(t), o.angular_speed(t))),
        );
        SceneInstant {
            scene: self,
            t,
            objects: buf,
        }
    }

    /// Renders the full equirectangular frame at time `t` to a luma plane
    /// of the projection's resolution.
    ///
    /// Rendering is exact but O(pixels); the streaming simulator uses the
    /// analytic [`Scene::sample`] path on the cell grid instead and only the
    /// JND panel and ground-truth quality checks render planes.
    pub fn render(&self, eq: &Equirect, t: f64) -> LumaPlane {
        let mut plane = LumaPlane::filled(eq.width, eq.height, 0);
        for y in 0..eq.height {
            for x in 0..eq.width {
                let p = eq.pixel_to_sphere(x as f64 + 0.5, y as f64 + 0.5);
                let s = self.sample(&p, t);
                plane.set(x, y, s.luma.round().clamp(0.0, 255.0) as u8);
            }
        }
        plane
    }
}

/// A scene frozen at one time: per-object position and angular speed are
/// precomputed so repeated spatial queries cost no per-object trigonometry.
///
/// Produced by [`Scene::instant`]; [`SceneInstant::sample`] and
/// [`SceneInstant::object_at`] agree exactly with the corresponding
/// [`Scene`] methods at the snapshot time.
#[derive(Debug, Clone)]
pub struct SceneInstant<'a> {
    scene: &'a Scene,
    t: f64,
    /// `(position(t), angular_speed(t))` per object, in spec order.
    objects: Vec<(Viewpoint, f64)>,
}

impl SceneInstant<'_> {
    /// The snapshot time, seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Index of the topmost covering object and its great-circle distance
    /// to `p`, if any — same precedence as [`Scene::object_at`].
    fn object_hit(&self, p: &Viewpoint) -> Option<(usize, f64)> {
        self.scene
            .spec
            .objects
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, o)| {
                let d = self.objects[i].0.great_circle_distance(p).value();
                (d <= o.size_deg / 2.0).then_some((i, d))
            })
    }

    /// The object covering sphere point `p`, topmost first, if any.
    pub fn object_at(&self, p: &Viewpoint) -> Option<&ObjectSpec> {
        self.object_hit(p).map(|(i, _)| &self.scene.spec.objects[i])
    }

    /// Analytic sample at sphere point `p` — bit-identical to
    /// `scene.sample(p, t)` at the snapshot time.
    pub fn sample(&self, p: &Viewpoint) -> SceneSample {
        let ev = self.scene.event_offset(self.t, p.yaw());
        if let Some((i, d)) = self.object_hit(p) {
            let obj = &self.scene.spec.objects[i];
            let tex = if obj.texture_amp > 0.0 {
                obj.texture_amp * (d / obj.size_deg * 8.0 * std::f64::consts::PI).sin()
            } else {
                0.0
            };
            SceneSample {
                luma: (obj.base_luma as f64 + tex + ev).clamp(0.0, 255.0),
                dof_dioptre: obj.dof_dioptre,
                content_speed: self.objects[i].1,
                texture_amp: obj.texture_amp,
                object_id: Some(obj.id),
            }
        } else {
            SceneSample {
                luma: (self.scene.bg_luma_field(p) + self.scene.bg_texture(p) + ev)
                    .clamp(0.0, 255.0),
                dof_dioptre: self.scene.spec.bg_dof_dioptre,
                content_speed: 0.0,
                texture_amp: self.scene.spec.bg_texture_amp,
                object_id: None,
            }
        }
    }

    /// Batch sampler writing structure-of-arrays columns: `luma[i]`,
    /// `dof[i]`, `speed[i]` and `tex[i]` receive the corresponding fields
    /// of `self.sample(&points[i])`, bit-identically. Points are walked
    /// in [`lanes::WIDTH`]-sized blocks with a fixed-trip inner loop —
    /// the per-lane scatters are independent, so the optimizer can
    /// overlap them — and the SoA layout keeps the feature extractor's
    /// accumulation loops contiguous. Every slot is written.
    ///
    /// Panics unless all four columns have `points.len()` elements.
    pub fn sample_columns(
        &self,
        points: &[Viewpoint],
        luma: &mut [f64],
        dof: &mut [f64],
        speed: &mut [f64],
        tex: &mut [f64],
    ) {
        let n = points.len();
        assert_eq!(luma.len(), n, "one luma slot per point");
        assert_eq!(dof.len(), n, "one dof slot per point");
        assert_eq!(speed.len(), n, "one speed slot per point");
        assert_eq!(tex.len(), n, "one texture slot per point");
        const W: usize = lanes::WIDTH;
        let mut i = 0;
        while i + W <= n {
            for l in 0..W {
                let s = self.sample(&points[i + l]);
                luma[i + l] = s.luma;
                dof[i + l] = s.dof_dioptre;
                speed[i + l] = s.content_speed;
                tex[i + l] = s.texture_amp;
            }
            i += W;
        }
        for j in i..n {
            let s = self.sample(&points[j]);
            luma[j] = s.luma;
            dof[j] = s.dof_dioptre;
            speed[j] = s.content_speed;
            tex[j] = s.texture_amp;
        }
    }

    /// Releases the snapshot's backing buffer so a pool can reuse it —
    /// the inverse of [`Scene::instant_with`].
    pub fn into_buffer(self) -> Vec<(Viewpoint, f64)> {
        self.objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_object_scene(speed: f64) -> Scene {
        Scene::new(SceneSpec::test_stimulus(speed, 1.0, 128), 30.0)
    }

    #[test]
    fn object_moves_at_constant_yaw_speed() {
        let obj = ObjectSpec {
            id: 1,
            yaw0: Degrees(0.0),
            pitch0: Degrees(0.0),
            yaw_speed: 10.0,
            pitch_amp: 0.0,
            pitch_period: 0.0,
            size_deg: 5.0,
            dof_dioptre: 1.0,
            base_luma: 50,
            texture_amp: 0.0,
        };
        let p0 = obj.position(0.0);
        let p1 = obj.position(2.0);
        assert!((p0.great_circle_distance(&p1).value() - 20.0).abs() < 1e-6);
        assert!((obj.angular_speed(1.0) - 10.0).abs() < 0.1);
    }

    #[test]
    fn object_wraps_around_the_sphere() {
        let obj = ObjectSpec {
            id: 1,
            yaw0: Degrees(170.0),
            pitch0: Degrees(0.0),
            yaw_speed: 20.0,
            pitch_amp: 0.0,
            pitch_period: 0.0,
            size_deg: 5.0,
            dof_dioptre: 1.0,
            base_luma: 50,
            texture_amp: 0.0,
        };
        let p = obj.position(1.0); // 190 -> wraps to -170
        assert!((p.yaw().value() + 170.0).abs() < 1e-9);
    }

    #[test]
    fn sample_inside_vs_outside_object() {
        let scene = one_object_scene(0.0);
        let inside = scene.sample(&Viewpoint::forward(), 0.0);
        assert_eq!(inside.object_id, Some(0));
        assert_eq!(inside.luma, 50.0);
        assert_eq!(inside.dof_dioptre, 1.0);

        let outside = scene.sample(&Viewpoint::new(Degrees(90.0), Degrees(0.0)), 0.0);
        assert_eq!(outside.object_id, None);
        assert_eq!(outside.luma, 128.0);
        assert_eq!(outside.dof_dioptre, 0.0);
        assert_eq!(outside.content_speed, 0.0);
    }

    #[test]
    fn moving_object_leaves_origin() {
        let scene = one_object_scene(15.0);
        assert_eq!(scene.sample(&Viewpoint::forward(), 0.0).object_id, Some(0));
        // After 2 s the object has moved 30 degrees; origin is background.
        assert_eq!(scene.sample(&Viewpoint::forward(), 2.0).object_id, None);
        let moved = scene.sample(&Viewpoint::new(Degrees(30.0), Degrees(0.0)), 2.0);
        assert_eq!(moved.object_id, Some(0));
        assert!((moved.content_speed - 15.0).abs() < 0.2);
    }

    #[test]
    fn luminance_event_step_and_ramp() {
        let ev = LuminanceEvent {
            start: 5.0,
            ramp_secs: 2.0,
            from_level: 0.0,
            to_level: -100.0,
            yaw_range: None,
        };
        assert_eq!(ev.offset_at(0.0, Degrees(0.0)), 0.0);
        assert_eq!(ev.offset_at(6.0, Degrees(0.0)), -50.0);
        assert_eq!(ev.offset_at(7.0, Degrees(0.0)), -100.0);
        assert_eq!(ev.offset_at(100.0, Degrees(0.0)), -100.0);
    }

    #[test]
    fn luminance_event_respects_yaw_range() {
        let ev = LuminanceEvent {
            start: 0.0,
            ramp_secs: 0.0,
            from_level: 0.0,
            to_level: 80.0,
            yaw_range: Some((Degrees(-30.0), Degrees(30.0))),
        };
        assert_eq!(ev.offset_at(1.0, Degrees(0.0)), 80.0);
        assert_eq!(ev.offset_at(1.0, Degrees(90.0)), 0.0);
    }

    #[test]
    fn luminance_event_wrapping_yaw_range() {
        let ev = LuminanceEvent {
            start: 0.0,
            ramp_secs: 0.0,
            from_level: 0.0,
            to_level: 80.0,
            yaw_range: Some((Degrees(150.0), Degrees(-150.0))),
        };
        assert_eq!(ev.offset_at(1.0, Degrees(170.0)), 80.0);
        assert_eq!(ev.offset_at(1.0, Degrees(-170.0)), 80.0);
        assert_eq!(ev.offset_at(1.0, Degrees(0.0)), 0.0);
    }

    #[test]
    fn scene_events_shift_luma() {
        let mut spec = SceneSpec::test_stimulus(0.0, 0.0, 100);
        spec.events.push(LuminanceEvent {
            start: 2.0,
            ramp_secs: 0.0,
            from_level: 0.0,
            to_level: 50.0,
            yaw_range: None,
        });
        let scene = Scene::new(spec, 10.0);
        let bg = Viewpoint::new(Degrees(90.0), Degrees(0.0));
        assert_eq!(scene.sample(&bg, 0.0).luma, 100.0);
        assert_eq!(scene.sample(&bg, 3.0).luma, 150.0);
    }

    #[test]
    fn render_matches_samples() {
        let eq = Equirect::new(72, 36);
        let scene = one_object_scene(0.0);
        let plane = scene.render(&eq, 0.0);
        assert_eq!((plane.width(), plane.height()), (72, 36));
        // Centre pixel is the object (grey 50), edges are background (128).
        assert_eq!(plane.get(36, 18), 50);
        assert_eq!(plane.get(0, 18), 128);
        // Whole plane values follow the analytic samples.
        for y in (0..36).step_by(7) {
            for x in (0..72).step_by(11) {
                let p = eq.pixel_to_sphere(x as f64 + 0.5, y as f64 + 0.5);
                let s = scene.sample(&p, 0.0);
                assert_eq!(plane.get(x, y) as f64, s.luma.round());
            }
        }
    }

    #[test]
    fn texture_fields_are_bounded() {
        let spec = SceneSpec {
            bg_luma: 128,
            bg_luma_amp: 30.0,
            bg_texture_freq: 20.0,
            bg_texture_amp: 25.0,
            bg_dof_dioptre: 0.1,
            objects: vec![],
            events: vec![],
        };
        let scene = Scene::new(spec, 10.0);
        for yaw in (-180..180).step_by(17) {
            for pitch in (-90..=90).step_by(15) {
                let s = scene.sample(
                    &Viewpoint::new(Degrees(yaw as f64), Degrees(pitch as f64)),
                    1.0,
                );
                assert!((0.0..=255.0).contains(&s.luma));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        Scene::new(SceneSpec::test_stimulus(0.0, 0.0, 0), 0.0);
    }

    /// The richest scene the tests use: overlapping objects, textured
    /// background, a yaw-ranged ramp event — every sample() code path.
    fn rich_scene() -> Scene {
        let mut spec = SceneSpec::test_stimulus(12.0, 1.2, 140);
        spec.bg_luma_amp = 20.0;
        spec.bg_texture_freq = 14.0;
        spec.bg_texture_amp = 18.0;
        spec.objects[0].texture_amp = 9.0;
        spec.objects[0].size_deg = 25.0;
        spec.objects.push(ObjectSpec {
            id: 1,
            yaw0: Degrees(5.0),
            pitch0: Degrees(2.0),
            yaw_speed: -8.0,
            pitch_amp: 4.0,
            pitch_period: 3.0,
            size_deg: 20.0,
            dof_dioptre: 0.7,
            base_luma: 90,
            texture_amp: 6.0,
        });
        spec.events.push(LuminanceEvent {
            start: 0.5,
            ramp_secs: 1.0,
            from_level: 0.0,
            to_level: 40.0,
            yaw_range: Some((Degrees(-60.0), Degrees(60.0))),
        });
        Scene::new(spec, 10.0)
    }

    #[test]
    fn instant_with_reused_buffer_matches_instant() {
        let scene = rich_scene();
        // A buffer pre-loaded with garbage must not perturb the snapshot.
        let mut buf = vec![(Viewpoint::forward(), 1234.5); 7];
        for t in [0.0, 0.75, 4.0] {
            let fresh = scene.instant(t);
            let pooled = scene.instant_with(t, buf);
            for yaw in (-180..180).step_by(13) {
                let p = Viewpoint::new(Degrees(yaw as f64), Degrees(5.0));
                assert_eq!(fresh.sample(&p), pooled.sample(&p), "t {t} yaw {yaw}");
            }
            buf = pooled.into_buffer();
        }
    }

    #[test]
    fn sample_columns_bit_equals_pointwise_at_adversarial_lengths() {
        let scene = rich_scene();
        let w = pano_arena::lanes::WIDTH;
        // A probe set larger than every length under test.
        let probes: Vec<Viewpoint> = (0..(5 * w + 3))
            .map(|i| {
                Viewpoint::new(
                    Degrees(-175.0 + 7.0 * i as f64),
                    Degrees(-80.0 + 4.0 * i as f64),
                )
            })
            .collect();
        for t in [0.0, 0.75, 1.3] {
            let inst = scene.instant(t);
            for len in [0, 1, w - 1, w, w + 1, 5 * w + 3] {
                let pts = &probes[..len];
                let mut luma = vec![-1.0; len];
                let mut dof = vec![-1.0; len];
                let mut speed = vec![-1.0; len];
                let mut tex = vec![-1.0; len];
                inst.sample_columns(pts, &mut luma, &mut dof, &mut speed, &mut tex);
                for (i, p) in pts.iter().enumerate() {
                    let s = inst.sample(p);
                    assert_eq!(luma[i].to_bits(), s.luma.to_bits(), "len {len} i {i}");
                    assert_eq!(dof[i].to_bits(), s.dof_dioptre.to_bits());
                    assert_eq!(speed[i].to_bits(), s.content_speed.to_bits());
                    assert_eq!(tex[i].to_bits(), s.texture_amp.to_bits());
                }
            }
        }
    }

    #[test]
    fn instant_matches_pointwise_sample_bit_for_bit() {
        // Two overlapping objects over a textured background with an
        // event: every code path of sample() is exercised.
        let mut spec = SceneSpec::test_stimulus(12.0, 1.2, 140);
        spec.bg_luma_amp = 20.0;
        spec.bg_texture_freq = 14.0;
        spec.bg_texture_amp = 18.0;
        spec.objects[0].texture_amp = 9.0;
        spec.objects[0].size_deg = 25.0;
        spec.objects.push(ObjectSpec {
            id: 1,
            yaw0: Degrees(5.0),
            pitch0: Degrees(2.0),
            yaw_speed: -8.0,
            pitch_amp: 4.0,
            pitch_period: 3.0,
            size_deg: 20.0,
            dof_dioptre: 0.7,
            base_luma: 90,
            texture_amp: 6.0,
        });
        spec.events.push(LuminanceEvent {
            start: 0.5,
            ramp_secs: 1.0,
            from_level: 0.0,
            to_level: 40.0,
            yaw_range: Some((Degrees(-60.0), Degrees(60.0))),
        });
        let scene = Scene::new(spec, 10.0);
        for t in [0.0, 0.75, 1.3, 4.0] {
            let inst = scene.instant(t);
            assert_eq!(inst.time(), t);
            for yaw in (-180..180).step_by(7) {
                for pitch in (-88..=88).step_by(11) {
                    let p = Viewpoint::new(Degrees(yaw as f64), Degrees(pitch as f64));
                    let a = scene.sample(&p, t);
                    let b = inst.sample(&p);
                    assert_eq!(a.luma.to_bits(), b.luma.to_bits(), "t {t} p {p:?}");
                    assert_eq!(a, b, "t {t} p {p:?}");
                    assert_eq!(
                        scene.object_at(&p, t).map(|o| o.id),
                        inst.object_at(&p).map(|o| o.id)
                    );
                }
            }
        }
    }
}
