//! Placeholder lib for the umbrella `pano` package; the real API lives in the member crates.

#![forbid(unsafe_code)]
